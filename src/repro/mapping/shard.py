"""Sharded intra-circuit routing: parallel slice routing + seam stitching.

The batch layer (:mod:`repro.service.batch`) and the serving gateway
parallelise *across* circuits; one large circuit still routes serially.
:class:`ShardedRouter` parallelises *within* a circuit:

1. **Partition** — :func:`repro.mapping.partition.partition_circuit` cuts the
   gate list into weakly-coupled slices at low-crossing frontiers.
2. **Slice routing** — each slice is routed as a full-width subcircuit by an
   ordinary serial :class:`~repro.mapping.hybrid_mapper.HybridMapper`.  With
   ``shard_workers >= 2`` (*speculative* scheduler) all slices route
   concurrently on a :class:`~repro.resilience.supervisor.SupervisedPool`,
   every worker starting from a copy of the *initial* mapping-state snapshot
   — slice ``k`` speculates that the state it inherits resembles the
   snapshot.  With ``shard_workers == 1`` (*chained* scheduler) slices route
   one after another from the true predecessor state; there is no
   speculation and the result is exact — the honest configuration for 1-CPU
   hosts, whose only overhead over plain serial routing is the partition
   sweep plus per-slice mapper setup.
3. **Seam stitching** — the speculative streams are *replayed* against the
   true merged state: an operation is kept when its preconditions still hold
   (gate executable, SWAP partners in the recorded traps, move source/
   destination unchanged) and dropped or deferred otherwise.  Deferred
   circuit gates accumulate into one *seam round* per slice — a small
   boundary subcircuit re-routed serially against the true state — so every
   emitted stream replays legally from the initial maps.

Contract (ROADMAP item 2): sharded routing is **not** bit-identical to
serial routing.  It is gated by *metrics parity* (ΔCZ / move counts within
bounds) plus full replay validity (:mod:`repro.mapping.replay`), enforced by
``tests/differential/test_differential_shard.py``.  The emitted stream
depends only on the chained-vs-speculative distinction (``shard_workers``,
part of the config fingerprint), never on how many workers actually ran or
whether a worker crashed mid-slice — a crashed/hung slice worker is recycled
by the supervised pool and its whole slice falls back to the seam path.

The speculative scheduler ships work to process workers via a fork-inherited
module global (:data:`_FORK_CONTEXT`) so the architecture, connectivity and
slice subcircuits never cross a pickle boundary; only the slice index does.
One sharded map runs per process at a time (guarded by a module lock).
"""

from __future__ import annotations

import threading
import time
from dataclasses import replace as dataclass_replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.gate import Gate, GateKind
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from ..resilience.supervisor import SupervisedPool
from .config import MapperConfig
from .partition import PartitionPlan, partition_circuit, slice_subcircuit
from .result import CircuitGateOp, MappingResult, ShuttleOp, SwapOp
from .state import MappingState

__all__ = ["ShardedRouter"]

#: Pool kind override for tests (``"process"`` / ``"thread"``); ``None``
#: auto-selects: process workers where ``fork`` is available, else threads.
_POOL_KIND: Optional[str] = None

#: Per-slice wall-clock budget handed to the supervised pool (``None`` =
#: unbounded).  Tests shrink it to exercise the hung-worker recycle path.
_SLICE_DEADLINE_S: Optional[float] = None

#: Fork-inherited routing context for speculative slice workers: set (under
#: :data:`_CONTEXT_LOCK`) *before* the pool is constructed so forked workers
#: inherit it; thread workers read it directly.
_FORK_CONTEXT: Dict[str, object] = {}
_CONTEXT_LOCK = threading.Lock()


def _route_slice_worker(slice_index: int) -> MappingResult:
    """Pool task: route one slice subcircuit from the snapshot state.

    Runs inside a forked worker process (or a pool thread); everything but
    the slice index arrives through :data:`_FORK_CONTEXT`.
    """
    from .hybrid_mapper import HybridMapper

    context = _FORK_CONTEXT
    mapper = HybridMapper(context["architecture"], context["config"],
                          context["connectivity"])
    state = context["snapshot"].copy()
    return mapper.map(context["subcircuits"][slice_index], initial_state=state)


def _resolve_pool_kind() -> str:
    if _POOL_KIND is not None:
        return _POOL_KIND
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
        return "process"
    except ValueError:  # pragma: no cover - platform without fork
        return "thread"


class ShardedRouter:
    """Partition → parallel slice routing → seam stitching.

    Constructed by :meth:`HybridMapper.map` when ``config.shard_routing`` is
    set; :meth:`map` returns ``None`` when the circuit partitions into fewer
    than two slices, which tells the caller to take the ordinary serial path
    (bit-identical to the committed goldens — the serial-fallback guard).
    """

    def __init__(self, architecture: NeutralAtomArchitecture,
                 config: MapperConfig,
                 connectivity: Optional[SiteConnectivity] = None) -> None:
        self.architecture = architecture
        self.config = config
        self.connectivity = connectivity or SiteConnectivity(architecture)
        # Slice and seam routing always runs the plain serial mapper — the
        # override is what keeps the mutual recursion between HybridMapper
        # and ShardedRouter one level deep.
        self._serial_config = config.with_overrides(shard_routing=False)

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def map(self, circuit: QuantumCircuit,
            initial_state: Optional[MappingState] = None
            ) -> Optional[MappingResult]:
        """Sharded mapping of ``circuit``; ``None`` = caller routes serially."""
        start_time = time.perf_counter()
        if circuit.num_entangling_gates() == 0:
            # Nothing to route — the serial path is pure emission; slicing
            # it would add overhead for a workload with no routing at all.
            return None
        tick = time.perf_counter()
        plan = partition_circuit(
            circuit,
            min_slice=self.config.shard_min_slice,
            max_slice=self.config.resolved_shard_max_slice,
            max_cut_qubits=self.config.shard_max_cut_qubits,
        )
        partition_seconds = time.perf_counter() - tick
        if plan.num_slices < 2:
            return None

        state = initial_state or MappingState(
            self.architecture, circuit.num_qubits,
            connectivity=self.connectivity)
        result = MappingResult(
            circuit=circuit,
            mode=self._serial_config.mode,
            initial_qubit_map=state.qubit_mapping(),
            initial_atom_map=state.atom_mapping(),
        )
        stats: Dict[str, object] = {
            "pool_kind": None,
            "workers": 1,
            "gates_replayed": 0,
            "gates_deferred": 0,
            "swaps_replayed": 0,
            "swaps_dropped": 0,
            "moves_replayed": 0,
            "moves_dropped": 0,
            "seam_rounds": 0,
            "seam_gates": 0,
            "slice_failures": [],
            "stitch_seconds": 0.0,
        }
        stats.update(plan.summary())

        if self.config.shard_workers <= 1:
            stats["scheduler"] = "chained"
            self._map_chained(plan, state, result, stats)
        else:
            stats["scheduler"] = "speculative"
            self._map_speculative(plan, state, result, stats)

        result.verify_complete()
        result.final_qubit_map = state.qubit_mapping()
        result.final_atom_map = state.atom_mapping()
        stats["partition_seconds"] = partition_seconds
        result.stage_seconds["partition"] = partition_seconds
        result.stage_seconds["stitch"] = stats["stitch_seconds"]
        result.shard_stats = stats
        result.runtime_seconds = time.perf_counter() - start_time
        return result

    # ------------------------------------------------------------------
    # Chained scheduler (shard_workers == 1)
    # ------------------------------------------------------------------
    def _map_chained(self, plan: PartitionPlan, state: MappingState,
                     result: MappingResult, stats: Dict[str, object]) -> None:
        """Route slices sequentially from the true state — exact, no seams."""
        from .hybrid_mapper import HybridMapper

        for piece in plan.slices:
            subcircuit = slice_subcircuit(plan.circuit, piece)
            mapper = HybridMapper(self.architecture, self._serial_config,
                                  self.connectivity)
            slice_result = mapper.map(subcircuit, initial_state=state)
            for op in slice_result.operations:
                if isinstance(op, CircuitGateOp):
                    result.append(dataclass_replace(
                        op, gate_index=op.gate_index + piece.start))
                else:
                    result.append(op)
            self._merge_counters(result, slice_result)
            _merge_stage_seconds(result.stage_seconds,
                                 slice_result.stage_seconds)

    # ------------------------------------------------------------------
    # Speculative scheduler (shard_workers >= 2)
    # ------------------------------------------------------------------
    def _map_speculative(self, plan: PartitionPlan, state: MappingState,
                         result: MappingResult,
                         stats: Dict[str, object]) -> None:
        """Route all slices concurrently from the snapshot, stitch in order.

        Futures are consumed in slice order and stitched incrementally, so
        slice ``k``'s replay overlaps slices ``k+1..`` still routing.  A
        slice whose worker failed (crash, deadline kill, pool shutdown) is
        deferred wholesale to its seam round — serial fallback, not fatal.
        """
        global _FORK_CONTEXT
        subcircuits = [slice_subcircuit(plan.circuit, piece)
                       for piece in plan.slices]
        kind = _resolve_pool_kind()
        workers = min(self.config.shard_workers, plan.num_slices)
        stats["pool_kind"] = kind
        stats["workers"] = workers
        slice_stage_seconds: Dict[str, float] = {}

        with _CONTEXT_LOCK:
            _FORK_CONTEXT = {
                "architecture": self.architecture,
                "config": self._serial_config,
                "connectivity": self.connectivity,
                "subcircuits": subcircuits,
                "snapshot": state.copy(),
            }
            pool = SupervisedPool(workers, kind=kind,
                                  deadline_s=_SLICE_DEADLINE_S)
            try:
                futures = [
                    pool.submit(_route_slice_worker, piece.index,
                                label=f"slice-{piece.index}")
                    for piece in plan.slices
                ]
                for piece, future in zip(plan.slices, futures):
                    try:
                        slice_result = future.result()
                    except Exception as exc:  # noqa: BLE001 - any pool fault
                        stats["slice_failures"].append(
                            {"slice": piece.index,
                             "error": f"{type(exc).__name__}: {exc}"})
                        slice_result = None
                    tick = time.perf_counter()
                    if slice_result is None:
                        deferred = [
                            (piece.start + offset, gate)
                            for offset, gate in enumerate(
                                subcircuits[piece.index].gates)
                            if gate.kind != GateKind.BARRIER
                        ]
                    else:
                        _merge_stage_seconds(slice_stage_seconds,
                                             slice_result.stage_seconds)
                        deferred = self._replay_slice(
                            result, state, slice_result, piece.start, stats)
                    stats["stitch_seconds"] += time.perf_counter() - tick
                    if deferred:
                        self._seam_round(result, state, deferred, stats)
            finally:
                pool.shutdown(wait=False)
                _FORK_CONTEXT = {}
        # Worker-side stage timings overlap in wall-clock; they are reported
        # separately so stage_seconds stays a serial-time account.
        stats["slice_stage_seconds"] = slice_stage_seconds

    def _replay_slice(self, result: MappingResult, state: MappingState,
                      slice_result: MappingResult, offset: int,
                      stats: Dict[str, object]) -> List[Tuple[int, Gate]]:
        """Replay one speculative stream against the true state.

        Returns the deferred gates as ``(global_gate_index, gate)`` in stream
        order (a valid execution order of the slice, so dependencies among
        deferred gates are preserved).  ``blocked`` tracks qubits with a
        deferred gate pending: any later gate touching a blocked qubit is
        deferred too, which conservatively preserves per-qubit gate order
        (stricter than the commutation-aware DAG, never weaker).
        """
        blocked: Set[int] = set()
        deferred: List[Tuple[int, Gate]] = []
        for op in slice_result.operations:
            if isinstance(op, CircuitGateOp):
                gate = op.gate
                if any(q in blocked for q in gate.qubits) \
                        or not state.gate_executable(gate):
                    blocked.update(gate.qubits)
                    deferred.append((offset + op.gate_index, gate))
                    stats["gates_deferred"] += 1
                    continue
                atoms = tuple(state.atom_of_qubit(q) for q in gate.qubits)
                sites = tuple(state.site_of_atom(a) for a in atoms)
                result.append(CircuitGateOp(
                    gate=gate, gate_index=offset + op.gate_index,
                    atoms=atoms, sites=sites))
                stats["gates_replayed"] += 1
            elif isinstance(op, SwapOp):
                # A SWAP survives when both recorded atoms still sit in their
                # recorded traps and the qubit is still on its recorded atom
                # (site adjacency is geometric, so it carries over).  The
                # partner qubit is re-read from the true state: an auxiliary
                # atom in the speculative run may hold a real qubit now.
                if (state.atom_of_qubit(op.qubit_a) == op.atom_a
                        and state.site_of_atom(op.atom_a) == op.site_a
                        and state.atom_at_site(op.site_b) == op.atom_b):
                    partner = state.qubit_of_atom(op.atom_b)
                    state.apply_swap_with_atom(op.qubit_a, op.atom_b)
                    result.append(SwapOp(
                        qubit_a=op.qubit_a,
                        qubit_b=partner if partner is not None else -1,
                        atom_a=op.atom_a, atom_b=op.atom_b,
                        site_a=op.site_a, site_b=op.site_b))
                    stats["swaps_replayed"] += 1
                else:
                    stats["swaps_dropped"] += 1
            elif isinstance(op, ShuttleOp):
                move = op.move
                if (state.site_of_atom(move.atom) == move.source
                        and state.site_is_free(move.destination)):
                    state.apply_move(move)
                    result.append(op)
                    stats["moves_replayed"] += 1
                else:
                    stats["moves_dropped"] += 1
        return deferred

    def _seam_round(self, result: MappingResult, state: MappingState,
                    deferred: Sequence[Tuple[int, Gate]],
                    stats: Dict[str, object]) -> None:
        """Serially re-route one slice's deferred gates against the true state."""
        from .hybrid_mapper import HybridMapper

        seam = QuantumCircuit(result.circuit.num_qubits,
                              name=f"{result.circuit.name}[seam]")
        for _, gate in deferred:
            seam.append(gate)
        mapper = HybridMapper(self.architecture, self._serial_config,
                              self.connectivity)
        seam_result = mapper.map(seam, initial_state=state)
        for op in seam_result.operations:
            if isinstance(op, CircuitGateOp):
                result.append(dataclass_replace(
                    op, gate_index=deferred[op.gate_index][0]))
            else:
                result.append(op)
        self._merge_counters(result, seam_result)
        _merge_stage_seconds(result.stage_seconds, seam_result.stage_seconds)
        stats["seam_rounds"] += 1
        stats["seam_gates"] += len(deferred)

    @staticmethod
    def _merge_counters(result: MappingResult, part: MappingResult) -> None:
        """Aggregate capability-attribution counters from a sub-route.

        Exact in chained mode (every gate routes through exactly one slice
        mapper).  In speculative mode only seam rounds contribute — replayed
        gates have no per-gate attribution (their routing happened in a
        worker against a speculated state), which ``shard_stats`` documents
        via ``gates_replayed``.  ``num_swaps``/``num_moves`` are counted by
        ``append`` and stay exact everywhere.
        """
        result.num_gate_routed += part.num_gate_routed
        result.num_shuttle_routed += part.num_shuttle_routed
        result.num_trivially_executable += part.num_trivially_executable
        result.num_fallback_reroutes += part.num_fallback_reroutes


def _merge_stage_seconds(target: Dict[str, float],
                         source: Dict[str, float]) -> None:
    for key, value in source.items():
        target[key] = target.get(key, 0.0) + value
