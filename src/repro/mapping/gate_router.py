"""Gate-based routing (process block (3), Section 3.3.1).

The gate-based router inserts SWAP gates to modify the qubit mapping until at
least one front-layer gate becomes executable.  Candidate SWAPs are all swaps
between a front-layer gate qubit and an atom within its interaction radius.
Each candidate is scored with the cost function of Eq. (2)/(3):

``C_g(S) = exp(-lambda_t * t(S)) * [ C_f(S) + w_l * C_l(S) ]``

where ``C_f``/``C_l`` aggregate, over the gate-based front and lookahead
layers, the routing distance that remains after hypothetically applying the
SWAP ``S`` (two-qubit gates measure the distance between their qubits;
multi-qubit gates measure the distance of every gate qubit to its assigned
site in the precomputed :class:`~repro.mapping.multiqubit.GatePosition`).

``t(S)`` is a recency score: SWAPs whose qubits took part in one of the last
``recency_window`` routing operations (including qubits merely *restricted*
by them, the NA-specific extension the paper describes) receive a larger
``t(S)``, and with ``lambda_t > 0`` the exponential factor damps their score,
steering the router towards SWAPs on fresh qubits and therefore towards more
parallelism.  The paper's evaluation uses ``lambda_t = 0`` where the factor
is exactly 1.

Interpretation note: Eq. (3) is stated in terms of the *difference* in SWAP
count caused by ``S``.  Because every candidate is compared on the same layer
set, ranking by remaining distance and ranking by difference are equivalent;
the implementation uses the remaining distance so that the cost is
non-negative and the exponential damping acts in the intended direction.

Incremental cost engine
-----------------------
Scoring a candidate naively walks the whole front + lookahead layer, although
a SWAP only changes the sites of ``qubit_a`` and ``qubit_b``.
:class:`SwapCostCache` therefore computes each layer's baseline distance
*once per routing round* and scores every candidate as ``baseline +
delta(candidate)``, where the delta re-evaluates only the gates touching the
two swapped qubits — found through the qubit → node inverted index that
:class:`~repro.mapping.layers.LayerManager` maintains (or one built on the
fly from the node lists).  All per-gate distances are integers, so
``baseline + delta`` is *bit-identical* to the full recomputation; the final
weighting ``C_f + w_l * C_l`` uses the exact same float expression as
:meth:`GateRouter.swap_cost`, which is kept as the naive reference
implementation (and is what the property tests compare against).

Cache invalidation: a :class:`SwapCostCache` is valid for one routing round
only — it snapshots per-node baseline distances against the current mapping
state and the current ``positions`` dict, and is discarded after the round's
SWAP is chosen.  The site-level adjacency and hop-distance tables it leans on
live in :class:`~repro.hardware.connectivity.SiteConnectivity` and are
immutable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gate import Gate
from ..hardware.architecture import NeutralAtomArchitecture
from .layers import build_qubit_node_index
from .multiqubit import GatePosition
from .state import MappingState

__all__ = ["SwapCandidate", "SwapCostCache", "GateRouter"]


@dataclass(frozen=True)
class SwapCandidate:
    """A candidate SWAP between the atoms at two adjacent sites.

    ``qubit_a`` is always a circuit qubit of a front-layer gate; ``qubit_b``
    is the circuit qubit held by the partner atom or ``None`` when the
    partner is an auxiliary (unassigned) atom.
    """

    qubit_a: int
    qubit_b: Optional[int]
    atom_a: int
    atom_b: int
    site_a: int
    site_b: int

    def key(self) -> Tuple[int, int]:
        """Canonical identity used for deduplication."""
        return (min(self.site_a, self.site_b), max(self.site_a, self.site_b))


class SwapCostCache:
    """One routing round's incremental scorer for SWAP candidates.

    Snapshots the per-gate baseline distances of the front and lookahead
    layers against the current state, then scores each candidate as
    ``baseline + delta``, re-evaluating only the gates that touch the two
    swapped qubits.  Valid for a single routing round: discard after the
    round's SWAP has been applied (the state, layers, or positions may have
    changed).

    ``qubit_index`` may be the (possibly larger) inverted index maintained by
    :class:`~repro.mapping.layers.LayerManager`; nodes it lists that are not
    part of the given layers are ignored.  Without it, an index over the
    given nodes is built on the fly.
    """

    __slots__ = ("_router", "_state", "_positions", "_nodes", "_base", "_slots",
                 "_qubit_index", "baseline_front", "baseline_lookahead", "exact")

    def __init__(self, router: "GateRouter", state: MappingState,
                 front_nodes: Sequence, lookahead_nodes: Sequence,
                 positions: Dict[int, GatePosition],
                 qubit_index: Optional[Dict[int, Sequence]] = None) -> None:
        self._router = router
        self._state = state
        self._positions = positions
        self._nodes: Dict[int, object] = {}
        self._base: Dict[int, int] = {}
        self._slots: Dict[int, int] = {}
        # The delta formulation attributes every node's distance exactly once;
        # a node listed twice (possible only with hand-crafted layer inputs,
        # never with LayerManager) voids that, and best_swap falls back to the
        # naive scorer.
        self.exact = True
        baseline_front = 0
        baseline_lookahead = 0
        gate_distance = router._gate_distance
        for slot, nodes in ((0, front_nodes), (1, lookahead_nodes)):
            for node in nodes:
                index = node.index
                if index in self._nodes:
                    self.exact = False
                distance = gate_distance(state, node.gate, None, positions.get(index))
                if slot == 0:
                    baseline_front += distance
                else:
                    baseline_lookahead += distance
                self._nodes[index] = node
                self._base[index] = distance
                self._slots[index] = slot
        self.baseline_front = baseline_front
        self.baseline_lookahead = baseline_lookahead
        # Without an externally maintained index, build one over the given
        # layers; either way lookups are filtered against the known nodes
        # (the LayerManager index may list shuttle-assigned nodes too).
        self._qubit_index = (qubit_index if qubit_index is not None
                             else build_qubit_node_index(front_nodes,
                                                         lookahead_nodes))

    def _touched_indices(self, qubit: int) -> Sequence[int]:
        known = self._nodes
        return [node.index for node in self._qubit_index.get(qubit, ())
                if node.index in known]

    def cost(self, candidate: SwapCandidate) -> float:
        """Cost of ``candidate``, bit-identical to :meth:`GateRouter.swap_cost`."""
        touched = set(self._touched_indices(candidate.qubit_a))
        if candidate.qubit_b is not None:
            touched.update(self._touched_indices(candidate.qubit_b))
        delta_front = 0
        delta_lookahead = 0
        router = self._router
        state = self._state
        positions = self._positions
        gate_distance = router._gate_distance
        for index in touched:
            node = self._nodes[index]
            distance = gate_distance(state, node.gate, candidate, positions.get(index))
            if self._slots[index] == 0:
                delta_front += distance - self._base[index]
            else:
                delta_lookahead += distance - self._base[index]
        front_cost = self.baseline_front + delta_front
        lookahead_cost = self.baseline_lookahead + delta_lookahead
        base = front_cost + router.lookahead_weight * lookahead_cost
        if router.decay_rate == 0.0:
            return base
        return base * math.exp(router.decay_rate * router.recency(candidate))


class GateRouter:
    """SWAP-insertion router with lookahead and recency damping.

    ``incremental`` selects the delta-cost engine (:class:`SwapCostCache`)
    for candidate scoring in :meth:`best_swap`; disabling it restores the
    naive full-layer recomputation (same selections, only slower — kept as
    the reference implementation for the equivalence tests).
    """

    def __init__(self, architecture: NeutralAtomArchitecture, *,
                 lookahead_weight: float = 0.1, decay_rate: float = 0.0,
                 recency_window: int = 4, incremental: bool = True) -> None:
        if lookahead_weight < 0:
            raise ValueError("lookahead weight must be non-negative")
        if decay_rate < 0:
            raise ValueError("decay rate must be non-negative")
        if recency_window < 0:
            raise ValueError("recency window must be non-negative")
        self.architecture = architecture
        self.lookahead_weight = lookahead_weight
        self.decay_rate = decay_rate
        self.recency_window = recency_window
        self.incremental = incremental
        self._step = 0
        self._last_used: Dict[int, int] = {}
        self._last_swap_key: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------
    # Recency bookkeeping
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._step = 0
        self._last_used.clear()
        self._last_swap_key = None

    def note_swap_applied(self, state: MappingState, candidate: SwapCandidate) -> None:
        """Record a SWAP execution for the recency score.

        Besides the two swapped qubits, every qubit within the restriction
        radius of the SWAP is recorded as "used": those atoms cannot take part
        in a parallel gate anyway, so preferring other qubits next increases
        parallelism (the NA-specific extension of the Li et al. decay).
        """
        self._step += 1
        self._last_swap_key = candidate.key()
        for site in (candidate.site_a, candidate.site_b):
            atom = state.atom_at_site(site)
            if atom is not None:
                qubit = state.qubit_of_atom(atom)
                if qubit is not None:
                    self._last_used[qubit] = self._step
            for neighbour in state.connectivity.restriction_neighbours(site):
                neighbour_atom = state.atom_at_site(neighbour)
                if neighbour_atom is None:
                    continue
                neighbour_qubit = state.qubit_of_atom(neighbour_atom)
                if neighbour_qubit is not None:
                    # Always record the newer step: with setdefault a
                    # previously-seen qubit would never refresh its last-used
                    # step and the decay damping would silently weaken over
                    # long runs.
                    self._last_used[neighbour_qubit] = self._step

    def recency(self, candidate: SwapCandidate) -> int:
        """Recency score ``t(S)`` in ``[0, recency_window]`` (0 = long unused)."""
        score = 0
        for qubit in (candidate.qubit_a, candidate.qubit_b):
            if qubit is None or qubit not in self._last_used:
                continue
            age = self._step - self._last_used[qubit]
            score = max(score, max(self.recency_window - age, 0))
        return score

    # ------------------------------------------------------------------
    # Candidate generation
    # ------------------------------------------------------------------
    def candidate_swaps(self, state: MappingState,
                        front_nodes: Sequence) -> List[SwapCandidate]:
        """All SWAPs acting on a front-layer gate qubit and an adjacent atom."""
        seen: Set[Tuple[int, int]] = set()
        candidates: List[SwapCandidate] = []
        for node in front_nodes:
            for qubit in node.gate.qubits:
                atom_a = state.atom_of_qubit(qubit)
                site_a = state.site_of_atom(atom_a)
                for site_b in state.connectivity.interaction_neighbours(site_a):
                    atom_b = state.atom_at_site(site_b)
                    if atom_b is None:
                        continue
                    key = (min(site_a, site_b), max(site_a, site_b))
                    if key in seen:
                        continue
                    seen.add(key)
                    candidates.append(SwapCandidate(
                        qubit_a=qubit,
                        qubit_b=state.qubit_of_atom(atom_b),
                        atom_a=atom_a,
                        atom_b=atom_b,
                        site_a=site_a,
                        site_b=site_b,
                    ))
        return candidates

    # ------------------------------------------------------------------
    # Cost evaluation
    # ------------------------------------------------------------------
    def _effective_site(self, state: MappingState, qubit: int,
                        candidate: SwapCandidate) -> int:
        """Site of ``qubit`` after hypothetically applying ``candidate``."""
        if qubit == candidate.qubit_a:
            return candidate.site_b
        if candidate.qubit_b is not None and qubit == candidate.qubit_b:
            return candidate.site_a
        return state.site_of_qubit(qubit)

    def _gate_distance(self, state: MappingState, gate: Gate,
                       candidate: Optional[SwapCandidate],
                       position: Optional[GatePosition]) -> int:
        """Remaining routing distance of one gate, optionally after a SWAP."""
        connectivity = state.connectivity
        site_of_qubit = state.site_of_qubit
        if candidate is None:
            swapped_a = swapped_b = None
            swap_site_a = swap_site_b = -1
        else:
            swapped_a = candidate.qubit_a
            swapped_b = candidate.qubit_b
            swap_site_a = candidate.site_a
            swap_site_b = candidate.site_b

        if position is not None:
            total = 0
            hop_row = connectivity.hop_row
            for qubit, target in position.assignment.items():
                if qubit == swapped_a:
                    origin = swap_site_b
                elif swapped_b is not None and qubit == swapped_b:
                    origin = swap_site_a
                else:
                    origin = site_of_qubit(qubit)
                if origin != target:
                    total += hop_row(origin)[target]
            return total

        qubits = gate.qubits
        if len(qubits) == 2:
            qubit_a, qubit_b = qubits
            if qubit_a == swapped_a:
                site_a = swap_site_b
            elif swapped_b is not None and qubit_a == swapped_b:
                site_a = swap_site_a
            else:
                site_a = site_of_qubit(qubit_a)
            if qubit_b == swapped_a:
                site_b = swap_site_b
            elif swapped_b is not None and qubit_b == swapped_b:
                site_b = swap_site_a
            else:
                site_b = site_of_qubit(qubit_b)
            if site_a == site_b or connectivity.adjacency_row(site_a)[site_b]:
                return 0
            return max(connectivity.hop_row(site_a)[site_b] - 1, 0)

        sites = []
        for qubit in qubits:
            if qubit == swapped_a:
                sites.append(swap_site_b)
            elif swapped_b is not None and qubit == swapped_b:
                sites.append(swap_site_a)
            else:
                sites.append(site_of_qubit(qubit))
        total = 0
        hop_row = connectivity.hop_row
        adjacency_row = connectivity.adjacency_row
        for i, site_a in enumerate(sites):
            adjacent = adjacency_row(site_a)
            for site_b in sites[i + 1:]:
                if site_a == site_b or adjacent[site_b]:
                    continue
                total += max(hop_row(site_a)[site_b] - 1, 0)
        return total

    def layer_distance(self, state: MappingState, nodes: Sequence,
                       positions: Dict[int, GatePosition],
                       candidate: Optional[SwapCandidate] = None) -> int:
        """Summed remaining routing distance of a layer (front or lookahead)."""
        total = 0
        for node in nodes:
            position = positions.get(node.index)
            total += self._gate_distance(state, node.gate, candidate, position)
        return total

    def swap_cost(self, state: MappingState, candidate: SwapCandidate,
                  front_nodes: Sequence, lookahead_nodes: Sequence,
                  positions: Dict[int, GatePosition]) -> float:
        """Cost of one SWAP candidate according to Eq. (2)/(3).

        This is the naive reference implementation: it re-walks both layers
        in full.  :meth:`best_swap` scores candidates through the incremental
        :class:`SwapCostCache`, whose results are bit-identical.
        """
        front_cost = self.layer_distance(state, front_nodes, positions, candidate)
        lookahead_cost = self.layer_distance(state, lookahead_nodes, positions, candidate)
        base = front_cost + self.lookahead_weight * lookahead_cost
        if self.decay_rate == 0.0:
            return base
        return base * math.exp(self.decay_rate * self.recency(candidate))

    def cost_cache(self, state: MappingState, front_nodes: Sequence,
                   lookahead_nodes: Sequence,
                   positions: Dict[int, GatePosition],
                   qubit_index: Optional[Dict[int, Sequence]] = None
                   ) -> SwapCostCache:
        """Build this round's incremental scorer (see :class:`SwapCostCache`)."""
        return SwapCostCache(self, state, front_nodes, lookahead_nodes,
                             positions, qubit_index)

    def best_swap(self, state: MappingState, front_nodes: Sequence,
                  lookahead_nodes: Sequence,
                  positions: Dict[int, GatePosition], *,
                  qubit_index: Optional[Dict[int, Sequence]] = None
                  ) -> Optional[SwapCandidate]:
        """Return the lowest-cost SWAP candidate (ties broken deterministically).

        The exact inverse of the most recently applied SWAP is excluded (as
        long as another candidate exists): with ``lambda_t = 0`` a cost tie
        between doing and undoing a SWAP would otherwise ping-pong forever.

        ``qubit_index`` is the optional qubit → node inverted index from
        :meth:`~repro.mapping.layers.LayerManager.qubit_node_index`; it lets
        the cost engine skip building its own per-round index.
        """
        candidates = self.candidate_swaps(state, front_nodes)
        if not candidates:
            return None
        if self._last_swap_key is not None and len(candidates) > 1:
            filtered = [c for c in candidates if c.key() != self._last_swap_key]
            if filtered:
                candidates = filtered
        cache: Optional[SwapCostCache] = None
        if self.incremental:
            cache = self.cost_cache(state, front_nodes, lookahead_nodes,
                                    positions, qubit_index)
            if not cache.exact:
                cache = None
        best_candidate = None
        best_key: Optional[Tuple[float, Tuple[int, int]]] = None
        for candidate in candidates:
            if cache is not None:
                cost = cache.cost(candidate)
            else:
                cost = self.swap_cost(state, candidate, front_nodes,
                                      lookahead_nodes, positions)
            key = (cost, candidate.key())
            if best_key is None or key < best_key:
                best_key = key
                best_candidate = candidate
        return best_candidate

    # ------------------------------------------------------------------
    # Deterministic fallback routing
    # ------------------------------------------------------------------
    def forced_route_swaps(self, state: MappingState, gate: Gate,
                           position: Optional[GatePosition] = None,
                           max_iterations: Optional[int] = None
                           ) -> List[SwapCandidate]:
        """Route one gate to executability along explicit shortest paths.

        Used as a safety valve when greedy cost minimisation stalls (the best
        SWAP oscillates without ever executing a gate).  The returned SWAP
        sequence is *already applied* to ``state``; the caller only has to
        record the candidates in the output stream and update the recency
        bookkeeping.  The routine is guaranteed to terminate: every SWAP moves
        one unsatisfied qubit one hop closer to its destination along a path
        over occupied sites, and paths avoid displacing already-satisfied
        gate qubits whenever possible.
        """
        connectivity = state.connectivity
        applied: List[SwapCandidate] = []
        if max_iterations is None:
            max_iterations = 4 * (state.architecture.topology.rows
                                  + state.architecture.topology.cols) * gate.num_qubits + 20

        def targets() -> List:
            if position is not None:
                return [(qubit, site) for qubit, site in position.assignment.items()
                        if state.site_of_qubit(qubit) != site]
            qubit_a, qubit_b = gate.qubits[0], gate.qubits[-1]
            if state.qubits_adjacent(qubit_a, qubit_b):
                return []
            return [(qubit_a, state.site_of_qubit(qubit_b))]

        iterations = 0
        while not state.gate_executable(gate):
            pending = targets()
            if not pending:
                break
            qubit, destination = pending[0]
            origin = state.site_of_qubit(qubit)
            occupied = state.occupied_sites()
            # Prefer paths that do not pass through other gate qubits' sites so
            # that routing one qubit does not undo another one's placement.
            protected = {state.site_of_qubit(q) for q in gate.qubits if q != qubit}
            path = connectivity.shortest_path(origin, destination,
                                              allowed=occupied - protected)
            if path is None or len(path) < 2:
                path = connectivity.shortest_path(origin, destination, allowed=occupied)
            if path is None or len(path) < 2:
                break
            next_site = path[1]
            partner_atom = state.atom_at_site(next_site)
            if partner_atom is None:
                break
            candidate = SwapCandidate(
                qubit_a=qubit,
                qubit_b=state.qubit_of_atom(partner_atom),
                atom_a=state.atom_of_qubit(qubit),
                atom_b=partner_atom,
                site_a=origin,
                site_b=next_site,
            )
            state.apply_swap_with_atom(candidate.qubit_a, candidate.atom_b)
            applied.append(candidate)
            iterations += 1
            if iterations > max_iterations:
                break
        return applied
