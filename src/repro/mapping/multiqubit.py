"""Multi-qubit gate position finding (Section 3.1.3, process block (3)).

For gates on three or more qubits, driving the qubits pairwise closer can end
in a dead end: with a small interaction radius only specific geometric
arrangements allow every pair to be within ``r_int`` simultaneously
(Example 7).  Instead, the gate-based router searches the occupied lattice for
an explicit *position* — a set of ``m`` mutually interacting occupied sites —
that can host the gate, and then drives every gate qubit towards its assigned
target site with SWAPs.

The search is a breadth-first expansion started simultaneously from all gate
qubits: candidate anchor sites are visited in order of increasing summed hop
distance to the gate qubits, and for each anchor the surrounding occupied
sites are scanned for a mutually-interacting subset of size ``m``.  The first
position whose estimated SWAP count is minimal among the explored candidates
is returned.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gate import Gate
from .state import MappingState

__all__ = ["GatePosition", "find_gate_position"]


class GatePosition:
    """A feasible placement of a multi-qubit gate.

    Attributes
    ----------
    sites:
        The ``m`` mutually interacting occupied sites hosting the gate.
    assignment:
        Mapping from gate qubit to its target site (an optimal matching by
        SWAP-distance is chosen greedily).
    estimated_swaps:
        Total estimated number of SWAPs to realise the assignment.
    arrived:
        Gate qubits that have been observed sitting on their assigned site
        while this position was cached.  Maintained by the mapper's cache
        validation: once a qubit has arrived, a later displacement (e.g. by
        a shuttling move) invalidates the cached position even if a foreign
        atom refills the trap.
    """

    __slots__ = ("sites", "assignment", "estimated_swaps", "arrived")

    def __init__(self, sites: Tuple[int, ...], assignment: Dict[int, int],
                 estimated_swaps: int) -> None:
        self.sites = sites
        self.assignment = assignment
        self.estimated_swaps = estimated_swaps
        self.arrived: Set[int] = set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GatePosition(sites={self.sites}, swaps={self.estimated_swaps})")


def _site_distance(state: MappingState, qubit: int, site: int) -> int:
    """Hop distance from a qubit's current site to a target site."""
    origin = state.site_of_qubit(qubit)
    if origin == site:
        return 0
    return state.connectivity.hop_distance(origin, site)


def _greedy_assignment(state: MappingState, qubits: Sequence[int],
                       sites: Sequence[int]) -> Tuple[Dict[int, int], int]:
    """Assign gate qubits to target sites greedily by increasing distance.

    For the gate widths of interest (m <= 5) a full optimal assignment would
    also be feasible, but the greedy matching is within one SWAP of optimal in
    practice and keeps the inner loop cheap.
    """
    remaining_sites = list(sites)
    assignment: Dict[int, int] = {}
    total = 0
    pairs = sorted(
        ((_site_distance(state, qubit, site), qubit, site)
         for qubit in qubits for site in sites),
        key=lambda item: item[0])
    assigned_qubits: Set[int] = set()
    used_sites: Set[int] = set()
    for distance, qubit, site in pairs:
        if qubit in assigned_qubits or site in used_sites:
            continue
        assignment[qubit] = site
        assigned_qubits.add(qubit)
        used_sites.add(site)
        total += max(distance - 0, 0)
        if len(assigned_qubits) == len(qubits):
            break
    # Subtract the "already there" hops: a qubit sitting on its target needs 0
    # swaps, a qubit one hop away needs 1, etc.  The raw hop count is already
    # that estimate, so no further correction is needed.
    return assignment, total


def _mutually_interacting_subsets(state: MappingState, anchor: int, size: int,
                                  max_candidates: int = 24) -> List[Tuple[int, ...]]:
    """Occupied, mutually interacting site sets of the given size containing ``anchor``."""
    connectivity = state.connectivity
    neighbours = [s for s in connectivity.interaction_neighbours(anchor)
                  if not state.site_is_free(s)]
    if len(neighbours) < size - 1:
        return []
    neighbours = neighbours[:max_candidates]
    subsets: List[Tuple[int, ...]] = []
    for combo in itertools.combinations(neighbours, size - 1):
        sites = (anchor,) + combo
        if connectivity.sites_mutually_interacting(sites):
            subsets.append(sites)
            if len(subsets) >= 8:
                break
    return subsets


def find_gate_position(state: MappingState, gate: Gate, *,
                       max_explored_anchors: int = 64) -> Optional[GatePosition]:
    """Find a feasible position for a multi-qubit gate, or ``None``.

    The returned position minimises the estimated SWAP count among the
    explored anchor candidates.  ``None`` means gate-based mapping cannot
    realise the gate and the mapper must fall back to shuttling
    (Section 3.1.3).
    """
    qubits = list(gate.qubits)
    size = len(qubits)
    if size < 3:
        raise ValueError("find_gate_position is only meaningful for gates with m >= 3")

    connectivity = state.connectivity
    # Multi-source BFS priority: explore anchors by summed hop distance to the
    # gate qubits' current sites.
    gate_sites = [state.site_of_qubit(q) for q in qubits]

    def anchor_priority(site: int) -> int:
        return sum(connectivity.hop_distance(site, gs) for gs in gate_sites)

    # Seed the exploration with the gate sites themselves plus their occupied
    # neighbourhoods, expanding outward in priority order.
    heap: List[Tuple[int, int]] = []
    seen: Set[int] = set()
    for site in gate_sites:
        if site not in seen:
            seen.add(site)
            heapq.heappush(heap, (anchor_priority(site), site))

    best: Optional[GatePosition] = None
    explored = 0
    while heap and explored < max_explored_anchors:
        priority, anchor = heapq.heappop(heap)
        explored += 1
        if best is not None and priority >= best.estimated_swaps + size * 2:
            # Anchors are popped in increasing priority; once they are clearly
            # worse than the incumbent the search can stop.
            break
        if not state.site_is_free(anchor):
            for sites in _mutually_interacting_subsets(state, anchor, size):
                assignment, swaps = _greedy_assignment(state, qubits, sites)
                if len(assignment) != size:
                    continue
                if best is None or swaps < best.estimated_swaps:
                    best = GatePosition(tuple(sites), assignment, swaps)
                    if swaps == 0:
                        return best
        for neighbour in connectivity.interaction_neighbours(anchor):
            if neighbour not in seen:
                seen.add(neighbour)
                heapq.heappush(heap, (anchor_priority(neighbour), neighbour))
    return best
