"""Operation-stream validity replay.

Sharded routing (:mod:`repro.mapping.shard`) trades bit-identity with the
serial mapper for a weaker but honest contract: *every emitted op stream
must replay legally*.  :func:`validate_stream` is that contract's checker —
it rebuilds a fresh :class:`~repro.mapping.state.MappingState` from the
result's recorded initial maps and walks the stream op by op, verifying
each operation's preconditions before applying it:

* a **circuit gate** must be recorded with the atoms/sites the state
  actually has its qubits on, and must be executable there (all qubit pairs
  within the interaction radius),
* a **SWAP** must name the atoms currently in its recorded traps (with the
  named qubit on atom A) and the two traps must be adjacent,
* a **move** must start from the atom's current trap and end on a free one.

After the walk the final maps must match the recorded ones and every
non-barrier circuit gate must have been emitted exactly once.  The checker
is deliberately independent of the mapper — it shares only ``MappingState``
— so a routing bug cannot hide behind its own bookkeeping.  The serial
mapper's streams pass by construction; the differential harness runs it
over every sharded stream.
"""

from __future__ import annotations

from typing import List, Optional

from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from .result import CircuitGateOp, MappingResult, ShuttleOp, SwapOp
from .state import MappingState

__all__ = ["validate_stream", "assert_stream_valid"]


def validate_stream(result: MappingResult,
                    architecture: NeutralAtomArchitecture,
                    connectivity: Optional[SiteConnectivity] = None,
                    max_violations: int = 25) -> List[str]:
    """Replay ``result``'s op stream from its initial maps; return violations.

    An empty list means the stream is legal end to end.  Collection stops
    after ``max_violations`` entries (a broken stream tends to cascade).
    """
    violations: List[str] = []

    def report(position: int, message: str) -> bool:
        violations.append(f"op[{position}]: {message}")
        return len(violations) >= max_violations

    num_qubits = result.circuit.num_qubits
    initial_sites = [result.initial_atom_map[atom]
                     for atom in range(architecture.num_atoms)]
    initial_qubit_map = [result.initial_qubit_map[qubit]
                         for qubit in range(num_qubits)]
    state = MappingState(architecture, num_qubits,
                         connectivity=connectivity,
                         initial_sites=initial_sites,
                         initial_qubit_map=initial_qubit_map)

    for position, op in enumerate(result.operations):
        if isinstance(op, CircuitGateOp):
            gate = op.gate
            actual_atoms = tuple(state.atom_of_qubit(q) for q in gate.qubits)
            if actual_atoms != op.atoms:
                if report(position, f"gate {op.gate_index} recorded atoms "
                                    f"{op.atoms} but qubits sit on "
                                    f"{actual_atoms}"):
                    return violations
                continue
            actual_sites = tuple(state.site_of_atom(a) for a in actual_atoms)
            if actual_sites != op.sites:
                if report(position, f"gate {op.gate_index} recorded sites "
                                    f"{op.sites} but atoms sit at "
                                    f"{actual_sites}"):
                    return violations
                continue
            if not state.gate_executable(gate):
                if report(position, f"gate {op.gate_index} ({gate.name}) not "
                                    f"executable at sites {actual_sites}"):
                    return violations
        elif isinstance(op, SwapOp):
            if state.atom_of_qubit(op.qubit_a) != op.atom_a:
                if report(position, f"SWAP names qubit {op.qubit_a} on atom "
                                    f"{op.atom_a} but it sits on "
                                    f"{state.atom_of_qubit(op.qubit_a)}"):
                    return violations
                continue
            if state.site_of_atom(op.atom_a) != op.site_a \
                    or state.atom_at_site(op.site_b) != op.atom_b:
                if report(position, "SWAP endpoints do not match the state: "
                                    f"atom {op.atom_a}@"
                                    f"{state.site_of_atom(op.atom_a)} vs "
                                    f"recorded {op.site_a}; site {op.site_b} "
                                    f"holds {state.atom_at_site(op.site_b)} "
                                    f"vs recorded {op.atom_b}"):
                    return violations
                continue
            try:
                state.apply_swap_with_atom(op.qubit_a, op.atom_b)
            except ValueError as exc:
                if report(position, f"SWAP illegal: {exc}"):
                    return violations
        elif isinstance(op, ShuttleOp):
            move = op.move
            if state.site_of_atom(move.atom) != move.source:
                if report(position, f"move of atom {move.atom} from "
                                    f"{move.source} but the atom sits at "
                                    f"{state.site_of_atom(move.atom)}"):
                    return violations
                continue
            if not state.site_is_free(move.destination):
                if report(position, f"move destination {move.destination} is "
                                    f"occupied by "
                                    f"{state.atom_at_site(move.destination)}"):
                    return violations
                continue
            state.apply_move(move)
        else:  # pragma: no cover - no other op kinds exist
            if report(position, f"unknown operation {op!r}"):
                return violations

    if result.final_qubit_map and state.qubit_mapping() != result.final_qubit_map:
        violations.append("final qubit map does not match the replayed state")
    if result.final_atom_map and state.atom_mapping() != result.final_atom_map:
        violations.append("final atom map does not match the replayed state")
    try:
        result.verify_complete()
    except AssertionError as exc:
        violations.append(str(exc))
    return violations


def assert_stream_valid(result: MappingResult,
                        architecture: NeutralAtomArchitecture,
                        connectivity: Optional[SiteConnectivity] = None) -> None:
    """Raise ``AssertionError`` listing every violation found (tests helper)."""
    violations = validate_stream(result, architecture, connectivity)
    if violations:
        summary = "\n  ".join(violations)
        raise AssertionError(
            f"op stream of {result.circuit.name!r} fails replay with "
            f"{len(violations)} violation(s):\n  {summary}")
