"""Operation-stream validity replay.

Sharded routing (:mod:`repro.mapping.shard`) trades bit-identity with the
serial mapper for a weaker but honest contract: *every emitted op stream
must replay legally*.  :class:`StreamValidator` is that contract's checker —
it rebuilds a fresh :class:`~repro.mapping.state.MappingState` from the
recorded initial maps and walks the stream op by op, verifying each
operation's preconditions before applying it:

* a **circuit gate** must be recorded with the atoms/sites the state
  actually has its qubits on, and must be executable there (all qubit pairs
  within the interaction radius),
* a **SWAP** must name the atoms currently in its recorded traps (with the
  named qubit on atom A) and the two traps must be adjacent,
* a **move** must start from the atom's current trap and end on a free one.

After the walk the final maps must match the recorded ones and every
non-barrier circuit gate must have been emitted exactly once.

The validator is incremental: :meth:`StreamValidator.check` consumes one
operation at a time, so the streaming stitcher
(:meth:`repro.mapping.shard.ShardedRouter.stream` with ``retain=False``)
can be validated without ever materialising the full op list —
the validator's live memory is one ``MappingState`` plus a per-gate
coverage array, a per-slice constant for the 1000+-qubit workloads.
:func:`validate_stream` is the whole-result convenience wrapper the
differential harness uses.

The checker is deliberately independent of the mapper — it shares only
``MappingState`` — so a routing bug cannot hide behind its own bookkeeping.
The serial mapper's streams pass by construction; the differential harness
runs it over every sharded stream.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..circuit.circuit import QuantumCircuit
from ..circuit.gate import GateKind
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from .result import CircuitGateOp, MappedOperation, MappingResult, ShuttleOp, SwapOp
from .state import MappingState

__all__ = ["StreamValidator", "validate_stream", "assert_stream_valid"]


class StreamValidator:
    """Incremental replay checker for one mapped operation stream.

    Feed every operation (in stream order) to :meth:`check`, then call
    :meth:`finish` once with the recorded final maps.  ``violations`` holds
    the failures found so far; collection stops growing after
    ``max_violations`` entries (a broken stream tends to cascade) but
    :meth:`check` stays safe to call — once saturated it applies nothing.
    """

    def __init__(self, circuit: QuantumCircuit,
                 architecture: NeutralAtomArchitecture,
                 initial_qubit_map: Dict[int, int],
                 initial_atom_map: Dict[int, int],
                 connectivity: Optional[SiteConnectivity] = None,
                 max_violations: int = 25) -> None:
        self.violations: List[str] = []
        self.max_violations = max_violations
        self._circuit = circuit
        num_qubits = circuit.num_qubits
        initial_sites = [initial_atom_map[atom]
                         for atom in range(architecture.num_atoms)]
        qubit_map = [initial_qubit_map[qubit] for qubit in range(num_qubits)]
        self._state = MappingState(architecture, num_qubits,
                                   connectivity=connectivity,
                                   initial_sites=initial_sites,
                                   initial_qubit_map=qubit_map)
        self._position = 0
        # Saturates at 2: "more than once" is all finish() needs to know.
        self._coverage = bytearray(len(circuit))

    @property
    def saturated(self) -> bool:
        return len(self.violations) >= self.max_violations

    def _report(self, message: str) -> None:
        if not self.saturated:
            self.violations.append(f"op[{self._position}]: {message}")

    # ------------------------------------------------------------------
    def check(self, op: MappedOperation) -> None:
        """Verify one operation's preconditions, then apply it to the state."""
        if self.saturated:
            return
        state = self._state
        if isinstance(op, CircuitGateOp):
            gate = op.gate
            if 0 <= op.gate_index < len(self._coverage) \
                    and self._coverage[op.gate_index] < 2:
                self._coverage[op.gate_index] += 1
            actual_atoms = tuple(state.atom_of_qubit(q) for q in gate.qubits)
            if actual_atoms != op.atoms:
                self._report(f"gate {op.gate_index} recorded atoms "
                             f"{op.atoms} but qubits sit on {actual_atoms}")
            else:
                actual_sites = tuple(state.site_of_atom(a)
                                     for a in actual_atoms)
                if actual_sites != op.sites:
                    self._report(f"gate {op.gate_index} recorded sites "
                                 f"{op.sites} but atoms sit at "
                                 f"{actual_sites}")
                elif not state.gate_executable(gate):
                    self._report(f"gate {op.gate_index} ({gate.name}) not "
                                 f"executable at sites {actual_sites}")
        elif isinstance(op, SwapOp):
            if state.atom_of_qubit(op.qubit_a) != op.atom_a:
                self._report(f"SWAP names qubit {op.qubit_a} on atom "
                             f"{op.atom_a} but it sits on "
                             f"{state.atom_of_qubit(op.qubit_a)}")
            elif state.site_of_atom(op.atom_a) != op.site_a \
                    or state.atom_at_site(op.site_b) != op.atom_b:
                self._report("SWAP endpoints do not match the state: "
                             f"atom {op.atom_a}@"
                             f"{state.site_of_atom(op.atom_a)} vs recorded "
                             f"{op.site_a}; site {op.site_b} holds "
                             f"{state.atom_at_site(op.site_b)} vs recorded "
                             f"{op.atom_b}")
            else:
                try:
                    state.apply_swap_with_atom(op.qubit_a, op.atom_b)
                except ValueError as exc:
                    self._report(f"SWAP illegal: {exc}")
        elif isinstance(op, ShuttleOp):
            move = op.move
            if state.site_of_atom(move.atom) != move.source:
                self._report(f"move of atom {move.atom} from {move.source} "
                             f"but the atom sits at "
                             f"{state.site_of_atom(move.atom)}")
            elif not state.site_is_free(move.destination):
                self._report(f"move destination {move.destination} is "
                             f"occupied by "
                             f"{state.atom_at_site(move.destination)}")
            else:
                state.apply_move(move)
        else:  # pragma: no cover - no other op kinds exist
            self._report(f"unknown operation {op!r}")
        self._position += 1

    def finish(self, final_qubit_map: Optional[Dict[int, int]] = None,
               final_atom_map: Optional[Dict[int, int]] = None) -> List[str]:
        """End-of-stream checks: final maps and exactly-once gate coverage."""
        state = self._state
        if final_qubit_map and state.qubit_mapping() != final_qubit_map:
            self.violations.append(
                "final qubit map does not match the replayed state")
        if final_atom_map and state.atom_mapping() != final_atom_map:
            self.violations.append(
                "final atom map does not match the replayed state")
        missing = [index for index, gate in enumerate(self._circuit)
                   if gate.kind != GateKind.BARRIER
                   and self._coverage[index] == 0]
        duplicated = [index for index, count in enumerate(self._coverage)
                      if count > 1]
        if missing or duplicated:
            self.violations.append(
                f"mapped stream incomplete: missing gates {missing[:10]}, "
                f"duplicated gates {duplicated[:10]}")
        return self.violations


def validate_stream(result: MappingResult,
                    architecture: NeutralAtomArchitecture,
                    connectivity: Optional[SiteConnectivity] = None,
                    max_violations: int = 25) -> List[str]:
    """Replay ``result``'s op stream from its initial maps; return violations.

    An empty list means the stream is legal end to end.  Collection stops
    after ``max_violations`` entries.
    """
    validator = StreamValidator(result.circuit, architecture,
                                result.initial_qubit_map,
                                result.initial_atom_map,
                                connectivity=connectivity,
                                max_violations=max_violations)
    for op in result.operations:
        if validator.saturated:
            return validator.violations
        validator.check(op)
    return validator.finish(result.final_qubit_map, result.final_atom_map)


def assert_stream_valid(result: MappingResult,
                        architecture: NeutralAtomArchitecture,
                        connectivity: Optional[SiteConnectivity] = None) -> None:
    """Raise ``AssertionError`` listing every violation found (tests helper)."""
    violations = validate_stream(result, architecture, connectivity)
    if violations:
        summary = "\n  ".join(violations)
        raise AssertionError(
            f"op stream of {result.circuit.name!r} fails replay with "
            f"{len(violations)} violation(s):\n  {summary}")
