"""Shuttling-based routing (process block (4), Section 3.3.2).

The shuttling router gathers the qubits of a front-layer gate by physically
moving atoms.  Because considering every possible rearrangement is infeasible
(Section 3.1.1), only two kinds of moves are generated:

* a **direct move** ``M`` of a gate qubit onto a free site in the target
  region, or
* a **move-away combination** ``(M_away, M)`` that first relocates a blocking
  atom to a nearby free site and then performs the direct move onto the freed
  site.

The moves for one gate form a *move chain* bounded by ``2 (m - 1)`` moves.
Chains are built per anchor qubit — the gate qubit the others gather around —
and evaluated with the cost function of Eq. (4)/(5):

``C_s(M) = C_f_s(M) + w_l * C_l_s(M) + w_t * C_t_parallel(M)``

summed over all moves of the chain.  ``C_f_s``/``C_l_s`` measure the change
in routing distance of the front and lookahead shuttling layers caused by the
move, and ``C_t_parallel`` charges the extra time a move costs on top of the
last ``history_window`` moves depending on whether it can share their AOD
batch (parallel loading and shuttling), only their activation window
(parallel loading), or nothing.

Incremental cost evaluation: only gates acting on the moved atom's circuit
qubit can change their distance, so :meth:`ShuttlingRouter.best_chain` builds
a qubit → node index over the layers once per routing round and the per-move
distance terms walk just the touched gates.  The parallelism penalty of a
move depends only on the move itself and the recent-move history, so it is
memoised per ``(atom, source, destination)`` and the cache is dropped
whenever the history changes (``note_moves_applied``/``reset``).  Both
tweaks are pure caching — chain selection is unchanged.  Site geometry
(neighbourhood rings, hop-distance rows) comes from the shared
:class:`~repro.hardware.connectivity.SiteConnectivity` /
:class:`~repro.hardware.lattice.SquareLattice` caches, which the gate-based
router uses as well.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit.gate import Gate
from ..hardware.architecture import NeutralAtomArchitecture
from ..shuttling.aod import moves_compatible
from ..shuttling.moves import Move, MoveChain
from .layers import build_qubit_node_index
from .state import MappingState

__all__ = ["ShuttlingRouter"]

_EPSILON = 1e-9


@dataclass
class _ChainProposal:
    """A move chain together with the gate it serves and its cost."""

    chain: MoveChain
    gate_index: int
    cost: float


class ShuttlingRouter:
    """Move-chain router with lookahead and AOD-parallelism awareness.

    ``incremental`` enables the qubit → node index walk and the per-round /
    per-history memos in :meth:`best_chain` and :meth:`move_time_penalty`;
    disabling it restores the naive full recomputation (identical chain
    selections, only slower — kept as the reference implementation for the
    equivalence tests).
    """

    def __init__(self, architecture: NeutralAtomArchitecture, *,
                 lookahead_weight: float = 0.1, time_weight: float = 0.1,
                 history_window: int = 4, incremental: bool = True) -> None:
        if lookahead_weight < 0 or time_weight < 0:
            raise ValueError("cost weights must be non-negative")
        if history_window < 0:
            raise ValueError("history window must be non-negative")
        self.architecture = architecture
        self.lookahead_weight = lookahead_weight
        self.time_weight = time_weight
        self.history_window = history_window
        self.incremental = incremental
        self._recent_moves: List[Move] = []
        # move_time_penalty depends only on the move and the recent-move
        # history; memoised per move identity until the history changes.
        self._penalty_cache: Dict[Tuple[int, int, int], float] = {}

    # ------------------------------------------------------------------
    # History bookkeeping
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._recent_moves.clear()
        self._penalty_cache.clear()

    def note_moves_applied(self, moves: Sequence[Move]) -> None:
        """Record executed moves for the parallelism term of the cost function."""
        if not moves:
            return
        self._recent_moves.extend(moves)
        if self.history_window and len(self._recent_moves) > self.history_window:
            self._recent_moves = self._recent_moves[-self.history_window:]
        self._penalty_cache.clear()

    # ------------------------------------------------------------------
    # Chain construction
    # ------------------------------------------------------------------
    def candidate_chains(self, state: MappingState, node) -> List[MoveChain]:
        """Move chains that make the gate of ``node`` executable.

        One chain is proposed per anchor qubit; chains are sorted by length
        so that minimal-length chains are preferred, following the intuition
        that two moves are unlikely to beat one direct move even when they
        can be shuttled in parallel.
        """
        gate: Gate = node.gate
        chains: List[MoveChain] = []
        for anchor in gate.qubits:
            chain = self._build_chain(state, gate, anchor, node.index)
            if chain is not None:
                chain.validate(max_gate_width=gate.num_qubits)
                chains.append(chain)
        chains.sort(key=len)
        if chains:
            shortest = len(chains[0])
            chains = [chain for chain in chains if len(chain) <= shortest + 1]
        return chains

    def _build_chain(self, state: MappingState, gate: Gate, anchor: int,
                     gate_index: int) -> Optional[MoveChain]:
        """Gather all gate qubits around ``anchor`` with direct/move-away moves."""
        connectivity = state.connectivity
        lattice = self.architecture.lattice
        anchor_site = state.site_of_qubit(anchor)

        # Locally simulated occupancy so consecutive moves in the chain see
        # the effects of earlier ones.  Copy-on-write: most candidate chains
        # are rejected (or keep every qubit in place) before any simulated
        # move, so the live occupancy view is only copied once the first
        # move is recorded.
        occupied: Set[int] = state.occupied_sites()
        owns_occupied = False
        kept_sites: List[int] = [anchor_site]
        moves: List[Move] = []
        gate_atom_sites = {state.site_of_qubit(q) for q in gate.qubits}

        # Gather the remaining qubits, nearest to the anchor first, so that
        # already-adjacent qubits claim their sites before far ones move in.
        anchor_row = lattice.euclidean_row(anchor_site)
        others = sorted(
            (q for q in gate.qubits if q != anchor),
            key=lambda q: anchor_row[state.site_of_qubit(q)])

        for qubit in others:
            current_site = state.site_of_qubit(qubit)
            if self._site_fits(connectivity, current_site, kept_sites):
                kept_sites.append(current_site)
                continue

            # Candidate destination sites: must interact with every kept site.
            zone = self._target_zone(connectivity, kept_sites)
            zone.discard(current_site)
            zone -= set(kept_sites)
            if not zone:
                return None

            current_row = lattice.rectangular_row(current_site)
            free_candidates = sorted(
                (site for site in zone if site not in occupied),
                key=lambda site: (current_row[site], site))
            if free_candidates:
                destination = free_candidates[0]
                moves.append(self._make_move(state, qubit, current_site, destination,
                                             lattice, is_move_away=False))
                if not owns_occupied:
                    occupied = set(occupied)
                    owns_occupied = True
                occupied.discard(current_site)
                occupied.add(destination)
                kept_sites.append(destination)
                continue

            # No free site in the zone: free one with a move-away first.
            blocked_candidates = sorted(
                (site for site in zone
                 if site in occupied and site not in gate_atom_sites),
                key=lambda site: (current_row[site], site))
            move_away = None
            freed_site = None
            for blocked in blocked_candidates:
                blocking_atom = state.atom_at_site(blocked)
                if blocking_atom is None:
                    continue
                away_destination = self._nearest_free_site(
                    state, connectivity, lattice, blocked, occupied,
                    forbidden=set(kept_sites) | {current_site})
                if away_destination is None:
                    continue
                move_away = Move(
                    atom=blocking_atom,
                    source=blocked,
                    destination=away_destination,
                    source_position=lattice.position(blocked),
                    destination_position=lattice.position(away_destination),
                    is_move_away=True,
                )
                freed_site = blocked
                break
            if move_away is None or freed_site is None:
                return None
            moves.append(move_away)
            if not owns_occupied:
                occupied = set(occupied)
                owns_occupied = True
            occupied.discard(freed_site)
            occupied.add(move_away.destination)
            moves.append(self._make_move(state, qubit, current_site, freed_site,
                                         lattice, is_move_away=False))
            occupied.discard(current_site)
            occupied.add(freed_site)
            kept_sites.append(freed_site)

        if not moves:
            return None
        return MoveChain(moves=moves, gate_index=gate_index)

    @staticmethod
    def _site_fits(connectivity, site: int, kept_sites: Sequence[int]) -> bool:
        """True if ``site`` interacts with every already-kept site."""
        return all(connectivity.are_adjacent(site, kept) for kept in kept_sites)

    @staticmethod
    def _target_zone(connectivity, kept_sites: Sequence[int]) -> Set[int]:
        """Sites within the interaction radius of *all* kept sites."""
        zone: Optional[Set[int]] = None
        for kept in kept_sites:
            neighbours = connectivity.interaction_set(kept)
            zone = set(neighbours) if zone is None else (zone & neighbours)
            if not zone:
                return set()
        return zone or set()

    @staticmethod
    def _nearest_free_site(state: MappingState, connectivity, lattice, origin: int,
                           occupied: Set[int], forbidden: Set[int],
                           max_radius: int = 4) -> Optional[int]:
        """Closest free site to ``origin`` outside ``forbidden`` (for move-aways)."""
        best = None
        best_distance = None
        origin_row = lattice.rectangular_row(origin)
        for radius in range(1, max_radius + 1):
            for site in lattice.sites_within(origin, radius * lattice.spacing + _EPSILON):
                if site in occupied or site in forbidden:
                    continue
                distance = origin_row[site]
                if best_distance is None or (distance, site) < (best_distance, best):
                    best = site
                    best_distance = distance
            if best is not None:
                return best
        return best

    @staticmethod
    def _make_move(state: MappingState, qubit: int, source: int, destination: int,
                   lattice, *, is_move_away: bool) -> Move:
        return Move(
            atom=state.atom_of_qubit(qubit),
            source=source,
            destination=destination,
            source_position=lattice.position(source),
            destination_position=lattice.position(destination),
            is_move_away=is_move_away,
        )

    # ------------------------------------------------------------------
    # Cost evaluation
    # ------------------------------------------------------------------
    def move_time_penalty(self, move: Move) -> float:
        """``C_t_parallel`` contribution of one move against the recent-move history.

        Memoised per ``(atom, source, destination)``: the same physical move
        shows up in many candidate chains within one routing round, and the
        penalty only changes when the recent-move history does.
        """
        if not self._recent_moves:
            return 0.0
        if not self.incremental:
            return self._compute_time_penalty(move)
        key = (move.atom, move.source, move.destination)
        cached = self._penalty_cache.get(key)
        if cached is not None:
            return cached
        penalty = self._compute_time_penalty(move)
        self._penalty_cache[key] = penalty
        return penalty

    def _compute_time_penalty(self, move: Move) -> float:
        durations = self.architecture.durations
        penalty = 0.0
        for recent in self._recent_moves:
            if moves_compatible(move, recent):
                # Parallel loading & shuttling: shares the whole AOD batch.
                continue
            same_row = abs(move.source_position[1] - recent.source_position[1]) < _EPSILON
            same_column = abs(move.source_position[0] - recent.source_position[0]) < _EPSILON
            if same_row or same_column:
                # Parallel loading only: the activation window is shared, but
                # the shuttle itself needs its own deactivation/activation.
                penalty += durations.aod_activation + durations.aod_deactivation
            else:
                penalty += (durations.aod_activation
                            + self.architecture.shuttle_move_duration(move.rectangular_distance)
                            + durations.aod_deactivation)
        return penalty

    def _distance_change(self, state: MappingState, move: Move, nodes: Sequence,
                         node_index: Optional[Dict[int, Sequence]] = None) -> float:
        """Summed change in gate distance over ``nodes`` caused by ``move``.

        Only gates involving the moved atom's circuit qubit can change their
        direct distance; the (rarer) indirect conflicts of Example 6 are
        handled by re-validating cached positions in the mapper rather than
        inside this per-move cost.  ``node_index`` (qubit → nodes, in node
        order) lets the walk skip straight to the touched gates.
        """
        moved_qubit = state.qubit_of_atom(move.atom)
        if moved_qubit is None:
            return 0.0
        lattice = self.architecture.lattice
        if node_index is not None:
            nodes = node_index.get(moved_qubit, ())
        source_row = lattice.euclidean_row(move.source)
        destination_row = lattice.euclidean_row(move.destination)
        site_of_qubit = state.site_of_qubit
        change = 0.0
        for node in nodes:
            gate = node.gate
            if moved_qubit not in gate.qubits:
                continue
            before = 0.0
            after = 0.0
            for other in gate.qubits:
                if other == moved_qubit:
                    continue
                other_site = site_of_qubit(other)
                before += source_row[other_site]
                after += destination_row[other_site]
            change += after - before
        return change / max(lattice.spacing, _EPSILON)

    def chain_cost(self, state: MappingState, chain: MoveChain,
                   front_nodes: Sequence, lookahead_nodes: Sequence,
                   front_index: Optional[Dict[int, Sequence]] = None,
                   lookahead_index: Optional[Dict[int, Sequence]] = None,
                   change_cache: Optional[Dict[Tuple[int, int, int],
                                               Tuple[float, float]]] = None) -> float:
        """Total cost of a chain according to Eq. (4)/(5).

        The optional qubit → node indices restrict the distance terms to the
        gates a move can actually affect, and ``change_cache`` memoises the
        per-move distance terms across chains of one routing round (keyed by
        ``(atom, source, destination)``); the cost is identical either way.
        """
        total = 0.0
        for move in chain:
            terms = None
            if change_cache is not None:
                terms = change_cache.get((move.atom, move.source, move.destination))
            if terms is None:
                terms = (self._distance_change(state, move, front_nodes, front_index),
                         self._distance_change(state, move, lookahead_nodes,
                                               lookahead_index))
                if change_cache is not None:
                    change_cache[(move.atom, move.source, move.destination)] = terms
            total += terms[0] + self.lookahead_weight * terms[1] \
                + self.time_weight * self.move_time_penalty(move)
        # Move-aways carry no distance benefit of their own; penalise longer
        # chains slightly so that, all else equal, minimal chains win.
        total += 0.25 * chain.num_move_aways
        return total

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def best_chain(self, state: MappingState, front_nodes: Sequence,
                   lookahead_nodes: Sequence) -> Optional[MoveChain]:
        """Best move chain over all front-layer shuttling gates.

        Equivalent to ranking every candidate chain by :meth:`chain_cost`;
        the qubit → node indices and the per-move distance-term memo (the
        same physical move appears in many candidate chains within one
        round) only avoid recomputation.
        """
        best: Optional[_ChainProposal] = None
        if self.incremental:
            front_index = build_qubit_node_index(front_nodes)
            lookahead_index = build_qubit_node_index(lookahead_nodes)
            change_cache: Optional[Dict[Tuple[int, int, int],
                                        Tuple[float, float]]] = {}
        else:
            front_index = lookahead_index = change_cache = None
        for node in front_nodes:
            for chain in self.candidate_chains(state, node):
                cost = self.chain_cost(state, chain, front_nodes, lookahead_nodes,
                                       front_index, lookahead_index, change_cache)
                proposal = _ChainProposal(chain=chain, gate_index=node.index, cost=cost)
                if best is None or (proposal.cost, len(proposal.chain)) < (best.cost, len(best.chain)):
                    best = proposal
        return best.chain if best is not None else None

    # ------------------------------------------------------------------
    # Deterministic fallback
    # ------------------------------------------------------------------
    def forced_chain(self, state: MappingState, node) -> Optional[MoveChain]:
        """Exhaustive fallback chain used when greedy chain construction fails.

        The method picks an explicit target cluster — the anchor's site plus
        the nearest sites forming a mutually interacting set of the gate's
        width — and moves every gate qubit that is not already on a cluster
        site onto it, clearing occupied cluster sites with move-aways whose
        destination may be anywhere on the lattice.  The resulting chain can
        exceed the ``2 (m - 1)`` bound (it is only used as a safety valve) but
        always exists as long as a single free trap remains.
        """
        gate: Gate = node.gate
        connectivity = state.connectivity
        lattice = self.architecture.lattice

        for anchor in gate.qubits:
            anchor_site = state.site_of_qubit(anchor)
            cluster = self._find_target_cluster(state, anchor_site, gate.num_qubits)
            if cluster is None:
                continue
            occupied: Set[int] = set(state.occupied_sites())
            gate_sites = {state.site_of_qubit(q) for q in gate.qubits}
            moves: List[Move] = []

            # Qubits already sitting on cluster sites keep their place.
            free_cluster_sites = [site for site in cluster if site not in gate_sites]
            movers = [q for q in gate.qubits
                      if state.site_of_qubit(q) not in cluster]
            if len(movers) > len(free_cluster_sites):
                continue

            feasible = True
            for qubit, target in zip(movers, free_cluster_sites):
                source = state.site_of_qubit(qubit)
                if target in occupied:
                    blocking_atom = state.atom_at_site(target)
                    if blocking_atom is None:
                        feasible = False
                        break
                    away = self._nearest_free_site(
                        state, connectivity, lattice, target, occupied,
                        forbidden=set(cluster) | gate_sites,
                        max_radius=max(lattice.rows, lattice.cols))
                    if away is None:
                        feasible = False
                        break
                    moves.append(Move(
                        atom=blocking_atom, source=target, destination=away,
                        source_position=lattice.position(target),
                        destination_position=lattice.position(away),
                        is_move_away=True))
                    occupied.discard(target)
                    occupied.add(away)
                moves.append(self._make_move(state, qubit, source, target, lattice,
                                             is_move_away=False))
                occupied.discard(source)
                occupied.add(target)
            if feasible and moves:
                return MoveChain(moves=moves, gate_index=node.index)
        return None

    def _find_target_cluster(self, state: MappingState, anchor_site: int,
                             size: int) -> Optional[List[int]]:
        """Sites forming a mutually interacting set of ``size`` containing the anchor."""
        connectivity = state.connectivity
        lattice = self.architecture.lattice
        cluster = [anchor_site]
        anchor_row = lattice.euclidean_row(anchor_site)
        candidates = sorted(
            connectivity.interaction_neighbours(anchor_site),
            key=lambda site: (anchor_row[site], site))
        for site in candidates:
            if len(cluster) == size:
                break
            if all(connectivity.are_adjacent(site, kept) for kept in cluster):
                cluster.append(site)
        if len(cluster) < size:
            return None
        return cluster
