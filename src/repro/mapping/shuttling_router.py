"""Shuttling-based routing (process block (4), Section 3.3.2).

The shuttling router gathers the qubits of a front-layer gate by physically
moving atoms.  Because considering every possible rearrangement is infeasible
(Section 3.1.1), only two kinds of moves are generated:

* a **direct move** ``M`` of a gate qubit onto a free site in the target
  region, or
* a **move-away combination** ``(M_away, M)`` that first relocates a blocking
  atom to a nearby free site and then performs the direct move onto the freed
  site.

The moves for one gate form a *move chain* bounded by ``2 (m - 1)`` moves.
Chains are built per anchor qubit — the gate qubit the others gather around —
and evaluated with the cost function of Eq. (4)/(5):

``C_s(M) = C_f_s(M) + w_l * C_l_s(M) + w_t * C_t_parallel(M)``

summed over all moves of the chain.  ``C_f_s``/``C_l_s`` measure the change
in routing distance of the front and lookahead shuttling layers caused by the
move, and ``C_t_parallel`` charges the extra time a move costs on top of the
last ``history_window`` moves depending on whether it can share their AOD
batch (parallel loading and shuttling), only their activation window
(parallel loading), or nothing.

Incremental cost evaluation: only gates acting on the moved atom's circuit
qubit can change their distance, so :meth:`ShuttlingRouter.best_chain` builds
a qubit → node index over the layers once per routing round and the per-move
distance terms walk just the touched gates.  The parallelism penalty of a
move depends only on the move itself and the recent-move history, so it is
memoised per ``(atom, source, destination)`` and the cache is dropped
whenever the history changes (``note_moves_applied``/``reset``).  Both
tweaks are pure caching — chain selection is unchanged.  Site geometry
(neighbourhood rings, hop-distance rows) comes from the shared
:class:`~repro.hardware.connectivity.SiteConnectivity` /
:class:`~repro.hardware.topology.Topology` caches, which the gate-based
router uses as well.

Zoned topologies: entangling gates only execute inside entangling zones
(the zone-filtered connectivity encodes that), so a gate whose anchor qubit
is stranded in a storage zone cannot gather partners around its current
site.  The chain construction then *relocates the anchor first* — one extra
direct move onto the nearest free entangling trap — and gathers the
remaining qubits around the new site; travel distances include the
topology's corridor-transit penalties through the pooled moves.  On unzoned
topologies none of these paths engage and chain construction is exactly the
historical square-lattice behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less fallback environments
    _np = None

from ..circuit.gate import Gate
from ..hardware.architecture import NeutralAtomArchitecture
from ..shuttling.aod import _ordering_preserved
from ..shuttling.moves import Move, MoveChain
from .layers import build_qubit_node_index
from .regioncache import ChainReads
from .state import MappingState

__all__ = ["ShuttlingRouter"]

_EPSILON = 1e-9


@dataclass
class _ChainProposal:
    """A move chain together with the gate it serves and its cost."""

    chain: MoveChain
    gate_index: int
    cost: float


class ShuttlingRouter:
    """Move-chain router with lookahead and AOD-parallelism awareness.

    ``incremental`` enables the qubit → node index walk and the per-round /
    per-history memos in :meth:`best_chain` and :meth:`move_time_penalty`;
    disabling it restores the naive full recomputation (identical chain
    selections, only slower — kept as the reference implementation for the
    equivalence tests).
    """

    def __init__(self, architecture: NeutralAtomArchitecture, *,
                 lookahead_weight: float = 0.1, time_weight: float = 0.1,
                 history_window: int = 4, incremental: bool = True,
                 chain_kernel: bool = True) -> None:
        if lookahead_weight < 0 or time_weight < 0:
            raise ValueError("cost weights must be non-negative")
        if history_window < 0:
            raise ValueError("history window must be non-negative")
        self.architecture = architecture
        self.lookahead_weight = lookahead_weight
        self.time_weight = time_weight
        self.history_window = history_window
        self.incremental = incremental
        # Vectorised chain-construction kernel (``MapperConfig.chain_kernel``):
        # candidate zones are scored as numpy gathers with argmin /
        # stable-argsort selection replicating the scalar ``(value, site)``
        # tie-breaks exactly, so emitted op streams are byte-identical
        # either way (enforced by the kernel axis of ``tests/differential``).
        # Scalar loops remain both the fallback (no numpy) and the
        # differential reference.
        self._kernel = bool(chain_kernel) and _np is not None
        # Zone capability of the trap topology: on zoned devices anchors
        # stranded in storage zones are relocated into an entangling zone
        # first, and pooled moves carry the corridor-penalised travel
        # distance.  Both flags are False for unzoned topologies, keeping
        # every hot path byte-identical to the square-lattice behaviour.
        topology = architecture.topology
        self._zone_aware = not topology.all_sites_entangling
        self._has_travel_penalty = topology.has_travel_penalties
        self._gate_capable_cache: Optional[frozenset] = None
        self._gate_capable_array = None
        # Per-round construction memos.  best_chain scores every candidate
        # chain against one frozen occupancy (moves are applied only after
        # selection), so sub-results that are pure functions of the
        # occupancy — the free candidates of an anchor's interaction zone,
        # the nearest free site of a move-away origin — are shared across
        # all of the round's constructions and dropped on the first
        # construction after any occupancy change.
        self._round_state: Optional[MappingState] = None
        self._round_epoch = -1
        self._round_free_zone: Dict[int, object] = {}
        self._round_nearest: Dict[int, Tuple[Optional[int], int]] = {}
        self._recent_moves: List[Move] = []
        # move_time_penalty depends only on the move and the recent-move
        # history; memoised per move identity until the history changes.
        self._penalty_cache: Dict[Tuple[int, int, int], float] = {}
        # The per-(move, recent-move) penalty term is pure geometry of the
        # two moves, so it survives history rotation; memoised across rounds
        # by both moves' identities.
        self._pair_penalty_cache: Dict[Tuple[Tuple[int, int, int],
                                             Tuple[int, int, int]], float] = {}
        # Moves are immutable values fully determined by (atom, source,
        # destination, is_move_away); the same candidate move is rebuilt
        # thousands of times across rounds, so instances are pooled.
        self._move_pool: Dict[Tuple[int, int, int, bool], Move] = {}
        # Cross-round cache of the distance part of a move's cost
        # contribution (front term + lookahead-weighted term), grouped per
        # moved qubit.  The part depends only on the qubit's partner-site
        # entries over both layers, so it is reused while those entries
        # compare equal to the snapshot taken when the group was filled.
        self._distance_parts: Dict[int, Dict[Tuple[int, int, int], float]] = {}
        self._prev_front_entries: Dict[int, List] = {}
        self._prev_lookahead_entries: Dict[int, List] = {}
        # Optional cross-round chain cache (a
        # :class:`~repro.mapping.regioncache.CrossRoundCache`); wired by the
        # hybrid mapper when ``MapperConfig.cross_round_cache`` is on.
        self.chain_cache = None

    # ------------------------------------------------------------------
    # History bookkeeping
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._recent_moves.clear()
        self._penalty_cache.clear()
        self._pair_penalty_cache.clear()
        self._move_pool.clear()
        self._distance_parts.clear()
        self._prev_front_entries.clear()
        self._prev_lookahead_entries.clear()
        self._round_state = None
        self._round_epoch = -1
        self._round_free_zone.clear()
        self._round_nearest.clear()

    def _sync_round(self, state: MappingState) -> None:
        """Invalidate the per-round memos after any occupancy change."""
        if state is not self._round_state \
                or state.occupancy_epoch != self._round_epoch:
            self._round_state = state
            self._round_epoch = state.occupancy_epoch
            self._round_free_zone.clear()
            self._round_nearest.clear()

    def note_moves_applied(self, moves: Sequence[Move]) -> None:
        """Record executed moves for the parallelism term of the cost function."""
        if not moves:
            return
        self._recent_moves.extend(moves)
        if self.history_window and len(self._recent_moves) > self.history_window:
            self._recent_moves = self._recent_moves[-self.history_window:]
        self._penalty_cache.clear()

    # ------------------------------------------------------------------
    # Chain construction
    # ------------------------------------------------------------------
    def candidate_chains(self, state: MappingState, node) -> List[MoveChain]:
        """Move chains that make the gate of ``node`` executable.

        One chain is proposed per anchor qubit; chains are sorted by length
        so that minimal-length chains are preferred, following the intuition
        that two moves are unlikely to beat one direct move even when they
        can be shuttled in parallel.

        With a wired cross-round cache the constructed list is memoised per
        gate and replayed while the gate qubits keep their ``(atom, site)``
        pairs and the occupancy of the chain region (every site construction
        can read) is unchanged — construction would reproduce the identical
        chains, so the replay is exact.
        """
        gate: Gate = node.gate
        cache = self.chain_cache
        reads = None
        if cache is not None:
            cached, reads = cache.probe_chains(state, gate, node.index)
            if cached is not None:
                return cached
        chains: List[MoveChain] = []
        for anchor in gate.qubits:
            chain = self._build_chain(state, gate, anchor, node.index,
                                      reads=reads)
            if chain is not None:
                if gate.num_qubits > 2:
                    # Two-qubit chains (at most a move-away plus a direct
                    # move onto the freed site) satisfy the invariants by
                    # construction; wider gates keep the safety check.  The
                    # bound only widens when a zoned anchor relocation was
                    # actually prepended (anchor on a storage trap), so the
                    # 2(m-1) invariant stays tight everywhere else.
                    relocated = (self._zone_aware
                                 and not self.architecture.is_entangling_site(
                                     state.site_of_qubit(anchor)))
                    chain.validate(max_gate_width=gate.num_qubits,
                                   extra_moves=1 if relocated else 0)
                chains.append(chain)
        # One chain per anchor: two-qubit gates (the hot path) yield at most
        # two, ordered and filtered without the sort/listcomp churn; wider
        # gates keep the generic walk.  Both match ``sort(key=len)`` (it is
        # stable) followed by the shortest+1 length filter.
        if len(chains) == 2:
            first, second = len(chains[0].moves), len(chains[1].moves)
            if first > second:
                chains.reverse()
                first, second = second, first
            if second > first + 1:
                del chains[1]
        elif len(chains) > 2:
            chains.sort(key=len)
            shortest = len(chains[0])
            chains = [chain for chain in chains if len(chain) <= shortest + 1]
        if cache is not None:
            cache.store_chains(state, gate, node.index, chains, reads)
        return chains

    def _build_chain(self, state: MappingState, gate: Gate, anchor: int,
                     gate_index: int,
                     reads: Optional[ChainReads] = None) -> Optional[MoveChain]:
        """Gather all gate qubits around ``anchor`` with direct/move-away moves.

        When ``reads`` is given, every *live* occupancy value the
        construction reads is recorded in it: the target-zone scans, the
        move-away ring scans (each site as occupied or free) and the
        identities of inspected blocking atoms.  Sites the chain itself has
        already mutated in its local simulation (``delta``) are excluded —
        their simulated value is a deterministic consequence of earlier
        recorded reads.  Together with the gate qubits' ``(atom, site)``
        pairs, the recorded reads fully determine the result, so the
        cross-round chain cache can replay it while they still hold.

        Two-qubit gates dispatch to :meth:`_build_chain_2q`; the generic
        path below handles them too (the specialisation is equivalence-
        tested against it, see ``TestTwoQubitChainSpecialisation``).  On a
        zoned topology an anchor stranded on a non-entangling site takes
        the generic path, which relocates the anchor into an entangling
        zone before gathering (the 2q specialisation assumes the anchor
        stays put).
        """
        if len(gate.qubits) == 2:
            if (not self._zone_aware
                    or self.architecture.is_entangling_site(
                        state.site_of_qubit(anchor))):
                if self._kernel:
                    return self._build_chain_2q_kernel(state, gate, anchor,
                                                       gate_index, reads)
                return self._build_chain_2q(state, gate, anchor, gate_index, reads)
        if self._kernel:
            return self._build_chain_generic_kernel(state, gate, anchor,
                                                    gate_index, reads)
        return self._build_chain_generic(state, gate, anchor, gate_index, reads)

    def _build_chain_generic(self, state: MappingState, gate: Gate, anchor: int,
                             gate_index: int,
                             reads: Optional[ChainReads] = None
                             ) -> Optional[MoveChain]:
        """Anchor-gathering chain construction for any gate width.

        Scalar reference implementation; the vectorised twin is
        :meth:`_build_chain_generic_kernel` and the kernel axis of
        ``tests/differential`` holds the two byte-identical.
        """
        connectivity = state.connectivity
        lattice = self.architecture.lattice
        anchor_site = state.site_of_qubit(anchor)

        # Locally simulated occupancy so consecutive moves in the chain see
        # the effects of earlier ones.  Copy-on-write: most candidate chains
        # are rejected (or keep every qubit in place) before any simulated
        # move, so the live occupancy view is only copied once the first
        # move is recorded.
        occupied: Set[int] = state.occupied_sites()
        owns_occupied = False
        delta: Set[int] = set()
        kept_sites: List[int] = [anchor_site]
        moves: List[Move] = []
        gate_atom_sites = {state.site_of_qubit(q) for q in gate.qubits}

        # Zoned topologies: an anchor on a storage trap cannot host the
        # gate, so it is relocated onto the nearest free entangling trap
        # first and the gathering happens around the new site.
        if self._zone_aware and not self.architecture.is_entangling_site(anchor_site):
            relocation = self._anchor_relocation(state, anchor, anchor_site, reads)
            if relocation is None:
                return None
            moves.append(relocation)
            occupied = set(occupied)
            owns_occupied = True
            occupied.discard(anchor_site)
            occupied.add(relocation.destination)
            delta.update((anchor_site, relocation.destination))
            anchor_site = relocation.destination
            kept_sites[0] = anchor_site

        # Gather the remaining qubits, nearest to the anchor first, so that
        # already-adjacent qubits claim their sites before far ones move in.
        anchor_row = lattice.euclidean_row(anchor_site)
        others = sorted(
            (q for q in gate.qubits if q != anchor),
            key=lambda q: anchor_row[state.site_of_qubit(q)])

        for qubit in others:
            current_site = state.site_of_qubit(qubit)
            if self._site_fits(connectivity, current_site, kept_sites):
                kept_sites.append(current_site)
                continue

            # Candidate destination sites: must interact with every kept site.
            zone = self._target_zone(connectivity, kept_sites)
            zone.discard(current_site)
            zone -= set(kept_sites)
            if reads is not None:
                reads.record_batch(zone, occupied, delta)
            if not zone:
                return None

            current_row = lattice.rectangular_row(current_site)
            if owns_occupied:
                free_candidates = {site for site in zone if site not in occupied}
            else:
                # Occupancy is still the live view: one C-level difference
                # against the incrementally maintained free-site set.
                free_candidates = zone & state.free_sites()
            if free_candidates:
                destination = min(free_candidates,
                                  key=lambda site: (current_row[site], site))
                moves.append(self._make_move(state, qubit, current_site, destination,
                                             lattice, is_move_away=False))
                if not owns_occupied:
                    occupied = set(occupied)
                    owns_occupied = True
                occupied.discard(current_site)
                occupied.add(destination)
                delta.update((current_site, destination))
                kept_sites.append(destination)
                continue

            # No free site in the zone: free one with a move-away first.
            blocked_candidates = sorted(
                (site for site in zone
                 if site in occupied and site not in gate_atom_sites),
                key=lambda site: (current_row[site], site))
            move_away = None
            freed_site = None
            for blocked in blocked_candidates:
                blocking_atom = state.atom_at_site(blocked)
                if reads is not None:
                    reads.atom_reads[blocked] = blocking_atom
                if blocking_atom is None:
                    continue
                away_destination = self._nearest_free_site(
                    state, connectivity, lattice, blocked, occupied,
                    forbidden=set(kept_sites) | {current_site},
                    reads=reads, delta=delta)
                if away_destination is None:
                    continue
                move_away = self._pooled_move(blocking_atom, blocked,
                                              away_destination, lattice,
                                              is_move_away=True)
                freed_site = blocked
                break
            if move_away is None or freed_site is None:
                return None
            moves.append(move_away)
            if not owns_occupied:
                occupied = set(occupied)
                owns_occupied = True
            occupied.discard(freed_site)
            occupied.add(move_away.destination)
            delta.update((freed_site, move_away.destination))
            moves.append(self._make_move(state, qubit, current_site, freed_site,
                                         lattice, is_move_away=False))
            occupied.discard(current_site)
            occupied.add(freed_site)
            delta.add(current_site)
            kept_sites.append(freed_site)

        if not moves:
            return None
        return MoveChain(moves=moves, gate_index=gate_index)

    def _build_chain_generic_kernel(self, state: MappingState, gate: Gate,
                                    anchor: int, gate_index: int,
                                    reads: Optional[ChainReads] = None
                                    ) -> Optional[MoveChain]:
        """Vectorised twin of :meth:`_build_chain_generic` (any gate width).

        The per-qubit candidate zone — the intersection of every kept
        site's interaction neighbourhood — is reduced as a chain of
        ``intersect1d`` gathers over the cached sorted neighbour arrays,
        and the destination falls out of one argmin.  Bit-identity with
        the scalar walk holds by the same arguments as
        :meth:`_build_chain_2q_kernel` (``intersect1d`` keeps the arrays
        sorted ascending, so argmin's first minimum is the scalar
        ``(row[site], site)`` tie-break; the row arrays hold the scalar
        rows' floats verbatim; the move-away order is a stable argsort
        over the same values).  The extra ingredient is the *simulated*
        occupancy of multi-move chains: the simulation only ever flips
        sites in ``delta``, so the kernel corrects the live free-mask
        gather with one vectorised equality mask per delta site instead
        of re-materialising an occupancy array.

        Occupancy reads are recorded by reference per kept site
        (:meth:`ChainReads.record_region` with the topology's cached
        frozensets) — a superset of the scalar path's intersected
        post-discard zone.  Superset recording is sound for the chain
        cache (replay requires strictly more sites to be unchanged) and
        costs one list append per kept site.
        """
        connectivity = state.connectivity
        lattice = self.architecture.lattice
        anchor_site = state.site_of_qubit(anchor)

        # Simulated occupancy, copy-on-write — exactly the scalar
        # bookkeeping: the set view feeds _nearest_free_site (which gates
        # its own kernel path on whether the view is still the live one)
        # and the membership probes of the delta corrections.
        occupied: Set[int] = state.occupied_sites()
        owns_occupied = False
        delta: Set[int] = set()
        kept_sites: List[int] = [anchor_site]
        moves: List[Move] = []
        gate_atom_sites = {state.site_of_qubit(q) for q in gate.qubits}

        if self._zone_aware and not self.architecture.is_entangling_site(anchor_site):
            relocation = self._anchor_relocation(state, anchor, anchor_site, reads)
            if relocation is None:
                return None
            moves.append(relocation)
            occupied = set(occupied)
            owns_occupied = True
            occupied.discard(anchor_site)
            occupied.add(relocation.destination)
            delta.update((anchor_site, relocation.destination))
            anchor_site = relocation.destination
            kept_sites[0] = anchor_site

        anchor_row = lattice.euclidean_row(anchor_site)
        others = sorted(
            (q for q in gate.qubits if q != anchor),
            key=lambda q: anchor_row[state.site_of_qubit(q)])

        for qubit in others:
            current_site = state.site_of_qubit(qubit)
            if self._site_fits(connectivity, current_site, kept_sites):
                kept_sites.append(current_site)
                continue

            # Candidate destinations: the intersection of every kept
            # site's neighbourhood, minus the kept sites and the moving
            # qubit's current site.
            zone = connectivity.interaction_array(kept_sites[0])
            if reads is not None:
                reads.record_region(connectivity.interaction_set(kept_sites[0]))
            for kept in kept_sites[1:]:
                if reads is not None:
                    reads.record_region(connectivity.interaction_set(kept))
                if zone.size:
                    zone = _np.intersect1d(
                        zone, connectivity.interaction_array(kept),
                        assume_unique=True)
            keep = zone != current_site
            for site in kept_sites:
                keep &= zone != site
            zone = zone[keep]
            if not zone.size:
                return None

            row = lattice.rectangular_row_array(current_site)
            free = state.free_mask[zone] != 0
            if owns_occupied:
                # The simulation differs from the live occupancy only on
                # delta sites; patch those entries of the gathered mask.
                for site in delta:
                    if site in occupied:
                        free &= zone != site
                    else:
                        free |= zone == site
            free_candidates = zone[free]
            if free_candidates.size:
                destination = int(
                    free_candidates[row[free_candidates].argmin()])
                moves.append(self._make_move(state, qubit, current_site,
                                             destination, lattice,
                                             is_move_away=False))
                if not owns_occupied:
                    occupied = set(occupied)
                    owns_occupied = True
                occupied.discard(current_site)
                occupied.add(destination)
                delta.update((current_site, destination))
                kept_sites.append(destination)
                continue

            # No free site in the zone: free one with a move-away first.
            blocked_keep = ~free
            for site in gate_atom_sites:
                blocked_keep &= zone != site
            blocked_candidates = zone[blocked_keep]
            order = row[blocked_candidates].argsort(kind="stable")
            move_away = None
            freed_site = None
            for index in order:
                blocked = int(blocked_candidates[index])
                blocking_atom = state.atom_at_site(blocked)
                if reads is not None:
                    reads.atom_reads[blocked] = blocking_atom
                if blocking_atom is None:
                    continue
                away_destination = self._nearest_free_site(
                    state, connectivity, lattice, blocked, occupied,
                    forbidden=set(kept_sites) | {current_site},
                    reads=reads, delta=delta)
                if away_destination is None:
                    continue
                move_away = self._pooled_move(blocking_atom, blocked,
                                              away_destination, lattice,
                                              is_move_away=True)
                freed_site = blocked
                break
            if move_away is None or freed_site is None:
                return None
            moves.append(move_away)
            if not owns_occupied:
                occupied = set(occupied)
                owns_occupied = True
            occupied.discard(freed_site)
            occupied.add(move_away.destination)
            delta.update((freed_site, move_away.destination))
            moves.append(self._make_move(state, qubit, current_site, freed_site,
                                         lattice, is_move_away=False))
            occupied.discard(current_site)
            occupied.add(freed_site)
            delta.add(current_site)
            kept_sites.append(freed_site)

        if not moves:
            return None
        return MoveChain(moves=moves, gate_index=gate_index)

    def _build_chain_2q(self, state: MappingState, gate: Gate, anchor: int,
                        gate_index: int,
                        reads: Optional[ChainReads]) -> Optional[MoveChain]:
        """Two-qubit specialisation of :meth:`_build_chain`.

        With a single gathering qubit there is never a second iteration, so
        no occupancy simulation is needed: the chain is either one direct
        move into the anchor's free zone, or a move-away plus the direct
        move onto the freed site.  Control flow, tie-breaking and recorded
        reads replicate the generic path exactly.
        """
        connectivity = state.connectivity
        lattice = self.architecture.lattice
        anchor_site = state.site_of_qubit(anchor)
        qubit = gate.qubits[1] if gate.qubits[0] == anchor else gate.qubits[0]
        current_site = state.site_of_qubit(qubit)
        if connectivity.are_adjacent(current_site, anchor_site):
            return None

        zone = connectivity.interaction_set(anchor_site).difference(
            (current_site, anchor_site))
        occupied = state.occupied_sites()
        if reads is not None:
            reads.record_batch(zone, occupied, None)
        if not zone:
            return None

        current_row = lattice.rectangular_row(current_site)
        free_candidates = zone & state.free_sites()
        if free_candidates:
            destination = min(free_candidates,
                              key=lambda site: (current_row[site], site))
            move = self._pooled_move(state.atom_of_qubit(qubit), current_site,
                                     destination, lattice, is_move_away=False)
            return MoveChain(moves=[move], gate_index=gate_index)

        # No free site in the zone (the zone already excludes both gate
        # sites, so every member is a blocking atom): free one with a
        # move-away first.
        blocked_candidates = sorted(
            zone, key=lambda site: (current_row[site], site))
        forbidden = {anchor_site, current_site}
        for blocked in blocked_candidates:
            blocking_atom = state.atom_at_site(blocked)
            if reads is not None:
                reads.atom_reads[blocked] = blocking_atom
            if blocking_atom is None:
                continue
            away_destination = self._nearest_free_site(
                state, connectivity, lattice, blocked, occupied,
                forbidden=forbidden, reads=reads, delta=None)
            if away_destination is None:
                continue
            move_away = self._pooled_move(blocking_atom, blocked,
                                          away_destination, lattice,
                                          is_move_away=True)
            direct = self._pooled_move(state.atom_of_qubit(qubit), current_site,
                                       blocked, lattice, is_move_away=False)
            return MoveChain(moves=[move_away, direct], gate_index=gate_index)
        return None

    def _build_chain_2q_kernel(self, state: MappingState, gate: Gate,
                               anchor: int, gate_index: int,
                               reads: Optional[ChainReads]
                               ) -> Optional[MoveChain]:
        """Vectorised twin of :meth:`_build_chain_2q` (numpy candidate batch).

        The whole candidate set is gathered through index arrays — the
        anchor's interaction zone (cached sorted array), the moving qubit's
        travel-distance row (cached float64 array) and the incremental
        free-site mask — and the destination is selected with one argmin.
        Bit-identity with the scalar loop holds because:

        * the zone array is sorted ascending, so the *first* minimum
          ``argmin`` returns is the smallest site — exactly the scalar
          ``min(..., key=(row[site], site))`` tie-break;
        * the row array holds the scalar rows' floats verbatim (no
          recomputation, so no accumulation-order drift — the PR 3
          euclidean pitfall cannot occur);
        * the move-away order is a stable argsort over the same values,
          matching ``sorted(zone, key=(row[site], site))``.

        Occupancy reads are recorded by reference
        (:meth:`ChainReads.record_region`): the zone frozenset is the
        topology's cached object, so recording costs one append.
        """
        connectivity = state.connectivity
        lattice = self.architecture.lattice
        anchor_site = state.site_of_qubit(anchor)
        qubit = gate.qubits[1] if gate.qubits[0] == anchor else gate.qubits[0]
        current_site = state.site_of_qubit(qubit)
        if connectivity.are_adjacent(current_site, anchor_site):
            return None

        # The neighbour table never contains its own site, and are_adjacent
        # ruled out current_site, so the interaction set equals the scalar
        # path's ``difference((current_site, anchor_site))`` without a copy.
        if reads is not None:
            reads.record_region(connectivity.interaction_set(anchor_site))
        zone = connectivity.interaction_array(anchor_site)
        if not zone.size:
            return None

        row = lattice.rectangular_row_array(current_site)
        # ndarray methods throughout: the np.* free functions route through
        # python dispatch (numpy's _wrapfunc), which dominates on zones this
        # small.  The free candidates of a zone depend only on the
        # occupancy, so they are shared across the round's constructions
        # (both gate sites are occupied, hence never among them).
        self._sync_round(state)
        candidates = self._round_free_zone.get(anchor_site)
        if candidates is None:
            candidates = zone[state.free_mask[zone].nonzero()[0]]
            self._round_free_zone[anchor_site] = candidates
        if candidates.size:
            destination = int(candidates[row[candidates].argmin()])
            move = self._pooled_move(state.atom_of_qubit(qubit), current_site,
                                     destination, lattice, is_move_away=False)
            return MoveChain(moves=[move], gate_index=gate_index)

        # No free site in the zone (the zone already excludes both gate
        # sites, so every member is a blocking atom): free one with a
        # move-away first.
        order = row[zone].argsort(kind="stable")
        occupied = state.occupied_sites()
        forbidden = {anchor_site, current_site}
        for index in order:
            blocked = int(zone[index])
            blocking_atom = state.atom_at_site(blocked)
            if reads is not None:
                reads.atom_reads[blocked] = blocking_atom
            if blocking_atom is None:
                continue
            away_destination = self._nearest_free_site(
                state, connectivity, lattice, blocked, occupied,
                forbidden=forbidden, reads=reads, delta=None)
            if away_destination is None:
                continue
            move_away = self._pooled_move(blocking_atom, blocked,
                                          away_destination, lattice,
                                          is_move_away=True)
            direct = self._pooled_move(state.atom_of_qubit(qubit), current_site,
                                       blocked, lattice, is_move_away=False)
            return MoveChain(moves=[move_away, direct], gate_index=gate_index)
        return None

    @staticmethod
    def _site_fits(connectivity, site: int, kept_sites: Sequence[int]) -> bool:
        """True if ``site`` interacts with every already-kept site."""
        return all(connectivity.are_adjacent(site, kept) for kept in kept_sites)

    @staticmethod
    def _target_zone(connectivity, kept_sites: Sequence[int]) -> Set[int]:
        """Sites within the interaction radius of *all* kept sites."""
        zone: Optional[Set[int]] = None
        for kept in kept_sites:
            neighbours = connectivity.interaction_set(kept)
            zone = set(neighbours) if zone is None else (zone & neighbours)
            if not zone:
                return set()
        return zone or set()

    def _gate_capable_sites(self, connectivity) -> frozenset:
        """Entangling-zone sites that actually have interaction partners.

        The gathering construction needs a gate-capable destination for a
        relocated anchor; an entangling site with an empty interaction
        neighbourhood (degenerate radii) could never host a partner, so it
        is excluded.  Pure topology — computed once per router.
        """
        cached = self._gate_capable_cache
        if cached is None:
            cached = frozenset(
                site for site in self.architecture.entangling_sites()
                if connectivity.coordination_number(site) > 0)
            self._gate_capable_cache = cached
        return cached

    def _anchor_relocation(self, state: MappingState, anchor: int,
                           anchor_site: int,
                           reads: Optional[ChainReads]) -> Optional[Move]:
        """Direct move of a storage-stranded anchor into an entangling zone.

        The destination is the free gate-capable site nearest to the
        anchor's current trap (travel metric, deterministic site-index
        tie-break).  The scan reads the occupancy of every gate-capable
        site, so the full candidate set is recorded for the chain cache —
        the relocation is always the chain's first move, hence all reads
        are live.
        """
        candidates = self._gate_capable_sites(state.connectivity)
        lattice = self.architecture.topology
        if self._kernel:
            # Relocation is always the chain's first move, so the scan runs
            # against the live occupancy: one masked gather over the cached
            # sorted candidate array replaces the set intersection, with the
            # ascending order making argmin the scalar (row, site) tie-break.
            if reads is not None:
                reads.record_region(candidates)
            array = self._gate_capable_array
            if array is None:
                array = _np.fromiter(sorted(candidates), dtype=_np.int64,
                                     count=len(candidates))
                self._gate_capable_array = array
            free = array[state.free_mask[array].nonzero()[0]]
            if not free.size:
                return None
            row = lattice.rectangular_row_array(anchor_site)
            destination = int(free[row[free].argmin()])
        else:
            if reads is not None:
                reads.record_batch(candidates, state.occupied_sites(), None)
            free = candidates & state.free_sites()
            if not free:
                return None
            row = lattice.rectangular_row(anchor_site)
            destination = min(free, key=lambda site: (row[site], site))
        return self._pooled_move(state.atom_of_qubit(anchor), anchor_site,
                                 destination, lattice, is_move_away=False)

    def _nearest_free_site(self, state: MappingState, connectivity, lattice,
                           origin: int, occupied: Set[int], forbidden: Set[int],
                           max_radius: int = 4,
                           reads: Optional[ChainReads] = None,
                           delta: Optional[Set[int]] = None) -> Optional[int]:
        """Closest free site to ``origin`` outside ``forbidden`` (for move-aways).

        Scanned ring sites are recorded in ``reads`` (occupancy reads); an
        unscanned larger ring cannot influence the result, so recording only
        the scanned rings keeps the cache's invalidation reads exact.

        Against the live occupancy the kernel path scans each disc as one
        masked gather (the disc arrays are sorted ascending, so argmin
        reproduces the scalar ``(row[site], site)`` tie-break) and records
        the scanned disc by reference; a construction-local simulated
        occupancy (``occupied`` is a copy, ``delta`` non-empty) takes the
        scalar path, whose reads the recorder partitions eagerly.
        """
        live = occupied is state.occupied_sites()
        if self._kernel and live:
            free_mask = state.free_mask
            spacing = lattice.spacing
            # Every live call site passes the gate sites as ``forbidden``
            # and those host the gate atoms, so the forbidden sites are
            # occupied and can never appear among the free candidates: the
            # result is a pure function of (origin, occupancy), shared
            # across the round's constructions.  A free forbidden site
            # (defensive; no current caller produces one) bypasses the memo
            # and filters explicitly.
            memoisable = not any(free_mask[site] for site in forbidden)
            if memoisable:
                self._sync_round(state)
                cached = self._round_nearest.get(origin)
                if cached is not None:
                    best, scanned_radius = cached
                    if reads is not None:
                        reads.record_region(lattice.sites_within_set(
                            origin, scanned_radius * spacing + _EPSILON))
                    return best
            origin_row = lattice.rectangular_row_array(origin)
            best = None
            scanned_radius = max_radius
            for radius in range(1, max_radius + 1):
                disc = lattice.sites_within_array(
                    origin, radius * spacing + _EPSILON)
                if not disc.size:
                    continue
                candidates = disc[free_mask[disc].nonzero()[0]]
                if candidates.size and not memoisable:
                    keep = _np.ones(candidates.size, dtype=bool)
                    for site in forbidden:
                        keep &= candidates != site
                    candidates = candidates[keep]
                if candidates.size:
                    best = int(candidates[origin_row[candidates].argmin()])
                    scanned_radius = radius
                    break
            if memoisable:
                self._round_nearest[origin] = (best, scanned_radius)
            if reads is not None:
                # Each scan covers the whole disc, so recording the largest
                # scanned disc once captures every occupancy read; the
                # frozenset is the topology's cached object (deferred
                # partition — live reads only on this path).
                reads.record_region(lattice.sites_within_set(
                    origin, scanned_radius * spacing + _EPSILON))
            return best

        best = None
        origin_row = lattice.rectangular_row(origin)
        live_free = state.free_sites() if live else None
        scanned_radius = max_radius
        for radius in range(1, max_radius + 1):
            disc = lattice.sites_within_set(origin, radius * lattice.spacing + _EPSILON)
            if live_free is not None:
                candidates = (disc & live_free) - forbidden
            else:
                candidates = {site for site in disc
                              if site not in occupied and site not in forbidden}
            if candidates:
                best = min(candidates,
                           key=lambda site: (origin_row[site], site))
                scanned_radius = radius
                break
        if reads is not None:
            # Each scan covers the whole disc, so recording the largest
            # scanned disc once captures every occupancy read of the loop.
            reads.record_batch(
                lattice.sites_within_set(origin,
                                         scanned_radius * lattice.spacing + _EPSILON),
                occupied, delta)
        return best

    def _make_move(self, state: MappingState, qubit: int, source: int,
                   destination: int, lattice, *, is_move_away: bool) -> Move:
        return self._pooled_move(state.atom_of_qubit(qubit), source, destination,
                                 lattice, is_move_away=is_move_away)

    def _pooled_move(self, atom: int, source: int, destination: int, lattice, *,
                     is_move_away: bool) -> Move:
        """Shared :class:`Move` instance for the given value (pooled).

        Moves are frozen dataclasses whose fields are fully determined by the
        arguments, so reusing one instance is observationally identical to
        constructing a fresh one — and orders of magnitude cheaper in the
        chain-construction hot loop.
        """
        key = (atom, source, destination, is_move_away)
        move = self._move_pool.get(key)
        if move is None:
            travel = (lattice.rectangular_row(source)[destination]
                      if self._has_travel_penalty else None)
            move = Move(
                atom=atom,
                source=source,
                destination=destination,
                source_position=lattice.position(source),
                destination_position=lattice.position(destination),
                is_move_away=is_move_away,
                travel_distance_um=travel,
            )
            self._move_pool[key] = move
        return move

    # ------------------------------------------------------------------
    # Cost evaluation
    # ------------------------------------------------------------------
    def move_time_penalty(self, move: Move) -> float:
        """``C_t_parallel`` contribution of one move against the recent-move history.

        Memoised per ``(atom, source, destination)``: the same physical move
        shows up in many candidate chains within one routing round, and the
        penalty only changes when the recent-move history does.
        """
        if not self._recent_moves:
            return 0.0
        if not self.incremental:
            return self._compute_time_penalty(move)
        key = (move.atom, move.source, move.destination)
        cached = self._penalty_cache.get(key)
        if cached is not None:
            return cached
        penalty = self._compute_time_penalty(move)
        self._penalty_cache[key] = penalty
        return penalty

    def _compute_time_penalty(self, move: Move) -> float:
        """Sum of the per-recent-move penalty terms, in history order.

        Each term is pure geometry of the two moves, so with the incremental
        engine it is memoised across rounds by both moves' identities (the
        history rotates by a few moves per round; most pairs recur).  Zero
        terms are skipped — adding ``0.0`` to a non-negative float is exact,
        so the sum is bit-identical to the naive accumulation.
        """
        pair_cache = self._pair_penalty_cache if self.incremental else None
        move_key = (move.atom, move.source, move.destination)
        penalty = 0.0
        for recent in self._recent_moves:
            if pair_cache is not None:
                pair = (move_key, (recent.atom, recent.source, recent.destination))
                term = pair_cache.get(pair)
                if term is None:
                    term = self._pair_penalty_term(move, recent)
                    pair_cache[pair] = term
            else:
                term = self._pair_penalty_term(move, recent)
            if term:
                penalty += term
        return penalty

    def _batch_time_penalties(self, chains_by_node: Sequence) -> None:
        """Vectorised twin of :meth:`move_time_penalty` for one round.

        Pre-fills ``_penalty_cache`` for every distinct candidate move of
        the round in one numpy batch instead of one scalar history walk per
        move.  Bit-identity with :meth:`_compute_time_penalty` holds
        because every elementwise operation mirrors the scalar term
        exactly: the compatibility predicate and the row/column checks are
        boolean, the durations compose left-to-right in the scalar
        evaluation order, ``rectangular_distance`` is gathered from the
        move objects (never recomputed), and the history accumulates in
        order with ``x + 0.0 == x`` covering the scalar zero-term skip.
        """
        recents = self._recent_moves
        cache = self._penalty_cache
        batch: Dict[Tuple[int, int, int], Move] = {}
        for _node, chains in chains_by_node:
            for chain in chains:
                for move in chain:
                    key = (move.atom, move.source, move.destination)
                    if key not in cache and key not in batch:
                        batch[key] = move
        if not batch:
            return
        moves = list(batch.values())
        atom = _np.array([m.atom for m in moves], dtype=_np.int64)
        src = _np.array([m.source for m in moves], dtype=_np.int64)
        dst = _np.array([m.destination for m in moves], dtype=_np.int64)
        sx = _np.array([m.source_position[0] for m in moves])
        sy = _np.array([m.source_position[1] for m in moves])
        ex = _np.array([m.destination_position[0] for m in moves])
        ey = _np.array([m.destination_position[1] for m in moves])
        full = _np.array([m.rectangular_distance for m in moves])
        durations = self.architecture.durations
        activation = durations.aod_activation
        deactivation = durations.aod_deactivation
        # Scalar order: (activation + distance / speed) + deactivation.
        full = (activation + full / self.architecture.shuttling_speed) \
            + deactivation
        shared = activation + deactivation
        penalty = _np.zeros(len(moves))
        for recent in recents:
            r_sx, r_sy = recent.source_position
            r_ex, r_ey = recent.destination_position
            sdx = sx - r_sx
            sdy = sy - r_sy
            edx = ex - r_ex
            edy = ey - r_ey
            near_sx = abs(sdx) < _EPSILON
            near_sy = abs(sdy) < _EPSILON
            ordering = ((near_sx | (abs(edx) < _EPSILON)
                         | ((sdx > 0) == (edx > 0)))
                        & (near_sy | (abs(edy) < _EPSILON)
                           | ((sdy > 0) == (edy > 0))))
            compatible = ((atom != recent.atom)
                          & (dst != recent.destination)
                          & (dst != recent.source)
                          & (src != recent.destination)
                          & ordering)
            penalty += _np.where(compatible, 0.0,
                                 _np.where(near_sy | near_sx, shared, full))
        for index, key in enumerate(batch):
            cache[key] = float(penalty[index])

    def _pair_penalty_term(self, move: Move, recent: Move) -> float:
        """``C_t_parallel`` contribution of ``move`` against one recent move.

        The compatibility check inlines :func:`repro.shuttling.aod.moves_compatible`
        — this runs ~10^5 times per mapping at scale, and the call/unpack
        overhead is measurable.  Divergence from the scheduler's rule is
        guarded by ``test_pair_penalty_matches_moves_compatible``.
        """
        if (move.atom != recent.atom
                and move.destination != recent.destination
                and move.destination != recent.source
                and recent.destination != move.source
                and _ordering_preserved(move.source_position[0],
                                        recent.source_position[0],
                                        move.destination_position[0],
                                        recent.destination_position[0])
                and _ordering_preserved(move.source_position[1],
                                        recent.source_position[1],
                                        move.destination_position[1],
                                        recent.destination_position[1])):
            # Parallel loading & shuttling: shares the whole AOD batch.
            return 0.0
        durations = self.architecture.durations
        same_row = abs(move.source_position[1] - recent.source_position[1]) < _EPSILON
        same_column = abs(move.source_position[0] - recent.source_position[0]) < _EPSILON
        if same_row or same_column:
            # Parallel loading only: the activation window is shared, but
            # the shuttle itself needs its own deactivation/activation.
            return durations.aod_activation + durations.aod_deactivation
        return (durations.aod_activation
                + self.architecture.shuttle_move_duration(move.rectangular_distance)
                + durations.aod_deactivation)

    def _distance_change(self, state: MappingState, move: Move, nodes: Sequence,
                         node_index: Optional[Dict[int, Sequence]] = None,
                         partner_cache: Optional[Dict[int, List]] = None) -> float:
        """Summed change in gate distance over ``nodes`` caused by ``move``.

        Only gates involving the moved atom's circuit qubit can change their
        direct distance; the (rarer) indirect conflicts of Example 6 are
        handled by re-validating cached positions in the mapper rather than
        inside this per-move cost.  ``node_index`` (qubit → nodes, in node
        order) lets the walk skip straight to the touched gates, and
        ``partner_cache`` memoises each qubit's partner sites for the round
        (the state does not mutate while candidate chains are ranked, and a
        hot qubit appears in many candidate moves).  Both keep the node
        order and per-node float arithmetic of the plain walk, so the sum is
        bit-identical.
        """
        moved_qubit = state.qubit_of_atom(move.atom)
        if moved_qubit is None:
            return 0.0
        lattice = self.architecture.lattice
        source_row = lattice.euclidean_row(move.source)
        destination_row = lattice.euclidean_row(move.destination)
        if partner_cache is not None and node_index is not None:
            entries = partner_cache.get(moved_qubit)
            if entries is None:
                entries = self._partner_entries(
                    state, node_index.get(moved_qubit, ()), moved_qubit)
                partner_cache[moved_qubit] = entries
            change = 0.0
            for entry in entries:
                if type(entry) is int:
                    change += destination_row[entry] - source_row[entry]
                else:
                    before = 0.0
                    after = 0.0
                    for other_site in entry:
                        before += source_row[other_site]
                        after += destination_row[other_site]
                    change += after - before
            return change / max(lattice.spacing, _EPSILON)
        if node_index is not None:
            nodes = node_index.get(moved_qubit, ())
        site_of_qubit = state.site_of_qubit
        change = 0.0
        for node in nodes:
            gate = node.gate
            qubits = gate.qubits
            if moved_qubit not in qubits:
                continue
            before = 0.0
            after = 0.0
            for other in qubits:
                if other == moved_qubit:
                    continue
                other_site = site_of_qubit(other)
                before += source_row[other_site]
                after += destination_row[other_site]
            change += after - before
        return change / max(lattice.spacing, _EPSILON)

    @staticmethod
    def _partner_entries(state: MappingState, nodes: Sequence,
                         moved_qubit: int) -> List:
        """Per-node partner sites of ``moved_qubit`` over ``nodes``.

        Two-qubit gates collapse to a bare site index (their before/after
        sums are single terms); wider gates keep their partner list so the
        accumulation order matches the plain walk exactly.
        """
        site_of_qubit = state.site_of_qubit
        entries: List = []
        for node in nodes:
            qubits = node.gate.qubits
            if moved_qubit not in qubits:
                continue
            if len(qubits) == 2:
                entries.append(site_of_qubit(
                    qubits[1] if qubits[0] == moved_qubit else qubits[0]))
            else:
                entries.append([site_of_qubit(other) for other in qubits
                                if other != moved_qubit])
        return entries

    def chain_cost(self, state: MappingState, chain: MoveChain,
                   front_nodes: Sequence, lookahead_nodes: Sequence,
                   front_index: Optional[Dict[int, Sequence]] = None,
                   lookahead_index: Optional[Dict[int, Sequence]] = None,
                   change_cache: Optional[Dict[Tuple[int, int, int],
                                               float]] = None,
                   front_partners: Optional[Dict[int, List]] = None,
                   lookahead_partners: Optional[Dict[int, List]] = None,
                   distance_groups: Optional[Dict[int, Dict]] = None) -> float:
        """Total cost of a chain according to Eq. (4)/(5).

        The optional qubit → node indices restrict the distance terms to the
        gates a move can actually affect, and ``change_cache`` memoises the
        complete per-move cost contribution — distance terms plus weighted
        parallelism penalty — across chains of one routing round (keyed by
        ``(atom, source, destination)``; the same physical move appears in
        many candidate chains).  ``distance_groups`` additionally carries the
        distance part across rounds (see :meth:`_distance_part`).  The
        per-move contribution is composed from the same floats either way,
        so the summed cost is identical.
        """
        total = 0.0
        for move in chain:
            contribution = None
            move_key = (move.atom, move.source, move.destination)
            if change_cache is not None:
                contribution = change_cache.get(move_key)
            if contribution is None:
                if distance_groups is not None:
                    distance_part = self._distance_part(
                        state, move, move_key, front_index, lookahead_index,
                        front_partners, lookahead_partners, distance_groups)
                else:
                    distance_part = (
                        self._distance_change(state, move, front_nodes,
                                              front_index, front_partners)
                        + self.lookahead_weight * self._distance_change(
                            state, move, lookahead_nodes, lookahead_index,
                            lookahead_partners))
                contribution = (distance_part
                                + self.time_weight * self.move_time_penalty(move))
                if change_cache is not None:
                    change_cache[move_key] = contribution
            total += contribution
        # Move-aways carry no distance benefit of their own; penalise longer
        # chains slightly so that, all else equal, minimal chains win.
        total += 0.25 * chain.num_move_aways
        return total

    def _distance_part(self, state: MappingState, move: Move,
                       move_key: Tuple[int, int, int],
                       front_index: Dict[int, Sequence],
                       lookahead_index: Dict[int, Sequence],
                       front_partners: Dict[int, List],
                       lookahead_partners: Dict[int, List],
                       distance_groups: Dict[int, Dict]) -> float:
        """Front + weighted lookahead distance term of one move, cached
        across rounds.

        The term is a pure function of the moved qubit's partner-site
        entries over both layers and of the move's endpoints, so the cached
        value is reused while the entries compare equal to the snapshot
        taken when the qubit's cache group was (re)filled — the float
        composition is unchanged, keeping costs bit-identical.
        ``distance_groups`` memoises the per-qubit group resolution for the
        current round.
        """
        moved_qubit = state.qubit_of_atom(move.atom)
        if moved_qubit is None:
            # Mirrors the plain computation: both distance terms are 0.0.
            return 0.0 + self.lookahead_weight * 0.0
        group = distance_groups.get(moved_qubit)
        if group is None:
            front_entries = front_partners.get(moved_qubit)
            if front_entries is None:
                front_entries = self._partner_entries(
                    state, front_index.get(moved_qubit, ()), moved_qubit)
                front_partners[moved_qubit] = front_entries
            lookahead_entries = lookahead_partners.get(moved_qubit)
            if lookahead_entries is None:
                lookahead_entries = self._partner_entries(
                    state, lookahead_index.get(moved_qubit, ()), moved_qubit)
                lookahead_partners[moved_qubit] = lookahead_entries
            if (self._prev_front_entries.get(moved_qubit) == front_entries
                    and self._prev_lookahead_entries.get(moved_qubit)
                    == lookahead_entries):
                group = self._distance_parts.setdefault(moved_qubit, {})
            else:
                group = {}
                self._distance_parts[moved_qubit] = group
                self._prev_front_entries[moved_qubit] = front_entries
                self._prev_lookahead_entries[moved_qubit] = lookahead_entries
            distance_groups[moved_qubit] = group
        part = group.get(move_key)
        if part is None:
            part = (self._distance_change(state, move, (), front_index,
                                          front_partners)
                    + self.lookahead_weight * self._distance_change(
                        state, move, (), lookahead_index, lookahead_partners))
            group[move_key] = part
        return part

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def best_chain(self, state: MappingState, front_nodes: Sequence,
                   lookahead_nodes: Sequence) -> Optional[MoveChain]:
        """Best move chain over all front-layer shuttling gates.

        Equivalent to ranking every candidate chain by :meth:`chain_cost`;
        the qubit → node indices and the per-move distance-term memo (the
        same physical move appears in many candidate chains within one
        round) only avoid recomputation.
        """
        if self.incremental:
            front_index = build_qubit_node_index(front_nodes)
            lookahead_index = build_qubit_node_index(lookahead_nodes)
            change_cache: Optional[Dict[Tuple[int, int, int], float]] = {}
            front_partners: Optional[Dict[int, List]] = {}
            lookahead_partners: Optional[Dict[int, List]] = {}
            distance_groups: Optional[Dict[int, Dict]] = {}
        else:
            front_index = lookahead_index = change_cache = None
            front_partners = lookahead_partners = distance_groups = None
        # Construction first, scoring second: the state is frozen across the
        # round, so gathering every candidate chain up front lets the kernel
        # pre-fill the per-move time penalties as one numpy batch.  Node and
        # chain order are unchanged, so the (cost, length) running minimum
        # selects exactly the chain the interleaved walk selected.
        chains_by_node = [(node, self.candidate_chains(state, node))
                          for node in front_nodes]
        if self.incremental and self._kernel and self._recent_moves:
            self._batch_time_penalties(chains_by_node)
        best_chain: Optional[MoveChain] = None
        best_rank: Optional[Tuple[float, int]] = None
        for node, chains in chains_by_node:
            for chain in chains:
                moves = chain.moves
                contribution = None
                if change_cache is not None and len(moves) == 1:
                    move = moves[0]
                    contribution = change_cache.get(
                        (move.atom, move.source, move.destination))
                if contribution is not None:
                    # Single-move chain with a memoised contribution — the
                    # dominant case once the round's caches are warm.  The
                    # sum mirrors chain_cost exactly: ``0.0 + c`` equals
                    # ``c + 0.0`` bit-for-bit, so the fast path never
                    # changes a cost.
                    cost = contribution + 0.25 * chain.num_move_aways
                else:
                    cost = self.chain_cost(state, chain, front_nodes,
                                           lookahead_nodes, front_index,
                                           lookahead_index, change_cache,
                                           front_partners, lookahead_partners,
                                           distance_groups)
                rank = (cost, len(moves))
                if best_rank is None or rank < best_rank:
                    best_chain = chain
                    best_rank = rank
        return best_chain

    # ------------------------------------------------------------------
    # Deterministic fallback
    # ------------------------------------------------------------------
    def forced_chain(self, state: MappingState, node) -> Optional[MoveChain]:
        """Exhaustive fallback chain used when greedy chain construction fails.

        The method picks an explicit target cluster — the anchor's site plus
        the nearest sites forming a mutually interacting set of the gate's
        width — and moves every gate qubit that is not already on a cluster
        site onto it, clearing occupied cluster sites with move-aways whose
        destination may be anywhere on the lattice.  The resulting chain can
        exceed the ``2 (m - 1)`` bound (it is only used as a safety valve) but
        always exists as long as a single free trap remains.
        """
        gate: Gate = node.gate
        connectivity = state.connectivity
        lattice = self.architecture.lattice

        for anchor in gate.qubits:
            anchor_site = state.site_of_qubit(anchor)
            cluster = self._find_target_cluster(state, anchor_site, gate.num_qubits)
            if cluster is None:
                continue
            occupied: Set[int] = set(state.occupied_sites())
            gate_sites = {state.site_of_qubit(q) for q in gate.qubits}
            moves: List[Move] = []

            # Qubits already sitting on cluster sites keep their place.
            free_cluster_sites = [site for site in cluster if site not in gate_sites]
            movers = [q for q in gate.qubits
                      if state.site_of_qubit(q) not in cluster]
            if len(movers) > len(free_cluster_sites):
                continue

            feasible = True
            for qubit, target in zip(movers, free_cluster_sites):
                source = state.site_of_qubit(qubit)
                if target in occupied:
                    blocking_atom = state.atom_at_site(target)
                    if blocking_atom is None:
                        feasible = False
                        break
                    away = self._nearest_free_site(
                        state, connectivity, lattice, target, occupied,
                        forbidden=set(cluster) | gate_sites,
                        max_radius=max(lattice.rows, lattice.cols))
                    if away is None:
                        feasible = False
                        break
                    moves.append(self._pooled_move(blocking_atom, target, away,
                                                   lattice, is_move_away=True))
                    occupied.discard(target)
                    occupied.add(away)
                moves.append(self._make_move(state, qubit, source, target, lattice,
                                             is_move_away=False))
                occupied.discard(source)
                occupied.add(target)
            if feasible and moves:
                return MoveChain(moves=moves, gate_index=node.index)
        return None

    def _find_target_cluster(self, state: MappingState, anchor_site: int,
                             size: int) -> Optional[List[int]]:
        """Sites forming a mutually interacting set of ``size`` containing the anchor.

        On a zoned topology an anchor on a storage trap cannot seed a
        cluster (no interaction partners), so the seed is redirected to the
        nearest gate-capable site; the forced chain then moves every gate
        qubit — the anchor included — onto the cluster.
        """
        connectivity = state.connectivity
        lattice = self.architecture.lattice
        if self._zone_aware and not self.architecture.is_entangling_site(anchor_site):
            capable = self._gate_capable_sites(connectivity)
            if not capable:
                return None
            row = lattice.rectangular_row(anchor_site)
            anchor_site = min(capable, key=lambda site: (row[site], site))
        cluster = [anchor_site]
        anchor_row = lattice.euclidean_row(anchor_site)
        candidates = sorted(
            connectivity.interaction_neighbours(anchor_site),
            key=lambda site: (anchor_row[site], site))
        for site in candidates:
            if len(cluster) == size:
                break
            if all(connectivity.are_adjacent(site, kept) for kept in cluster):
                cluster.append(site)
        if len(cluster) < size:
            return None
        return cluster
