"""Capability decision (process block (2)).

For every gate in the front (and lookahead) layer the mapper estimates how
many SWAPs gate-based routing would need and how many shuttling moves
shuttling-based routing would need, converts both estimates into approximate
success probabilities ``P_g`` and ``P_s`` following the fidelity model of
Eq. (1), weighs them with the user-chosen factors ``alpha_g`` and ``alpha_s``,
and assigns the gate to the capability with the larger weighted outcome.

The estimates are deliberately cheap — they are recomputed for every front
layer — and only need to rank the two capabilities correctly, not predict the
absolute fidelity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..circuit.gate import Gate
from ..hardware.architecture import NeutralAtomArchitecture
from .state import MappingState

__all__ = ["CapabilityDecision", "GateCostEstimate", "CapabilityDecider"]


@dataclass(frozen=True)
class GateCostEstimate:
    """Cheap per-gate estimate backing the capability decision."""

    gate_index: int
    estimated_swaps: int
    estimated_moves: int
    estimated_move_distance_um: float
    success_gate_based: float
    success_shuttling_based: float


@dataclass(frozen=True)
class CapabilityDecision:
    """Outcome of the decision step for one gate."""

    gate_index: int
    use_gate_based: bool
    estimate: GateCostEstimate


class CapabilityDecider:
    """Computes per-gate capability decisions.

    Parameters
    ----------
    architecture:
        Target device (supplies fidelities, durations and coherence times).
    alpha_gate / alpha_shuttling:
        The weighting factors ``alpha_g`` and ``alpha_s``.  Setting one of
        them to zero forces the corresponding capability off, reproducing the
        paper's gate-only and shuttling-only modes.
    """

    def __init__(self, architecture: NeutralAtomArchitecture,
                 alpha_gate: float = 1.0, alpha_shuttling: float = 1.0) -> None:
        if alpha_gate < 0 or alpha_shuttling < 0:
            raise ValueError("alpha weights must be non-negative")
        if alpha_gate == 0 and alpha_shuttling == 0:
            raise ValueError("at least one of alpha_g, alpha_s must be positive")
        self.architecture = architecture
        self.alpha_gate = alpha_gate
        self.alpha_shuttling = alpha_shuttling
        # Zone capability (zoned topologies): 2Q+ gates can only execute in
        # entangling zones, and SWAP chains cannot traverse storage traps
        # (they have no interaction adjacency), so a gate with a qubit in a
        # storage zone is assigned to shuttling regardless of the weights.
        self._zones_limit_gates = not architecture.all_sites_entangling
        # Optional cross-round decision cache (a
        # :class:`~repro.mapping.regioncache.CrossRoundCache`); wired by the
        # hybrid mapper when ``MapperConfig.cross_round_cache`` is on.
        self.cache = None
        # Free-trap counts the latest estimate read (per anchor, in qubit
        # order), or None when it read no occupancy at all; forwarded to the
        # cache so validation revisits exactly what the estimate depends on.
        self._last_free_counts: Optional[Tuple[int, ...]] = None

    # ------------------------------------------------------------------
    # Estimates
    # ------------------------------------------------------------------
    def estimate(self, state: MappingState, gate: Gate, gate_index: int) -> GateCostEstimate:
        """Estimate routing effort and success probability for both capabilities."""
        arch = self.architecture
        qubits = list(gate.qubits)

        # --- gate-based: SWAPs needed to bring all qubits together ---------
        estimated_swaps = self._estimate_swaps(state, qubits)

        # --- shuttling-based: moves needed to gather the qubits ------------
        estimated_moves, move_distance = self._estimate_moves(state, qubits)

        # --- convert to approximate success probabilities ------------------
        t_eff = arch.effective_decoherence_time
        idle_qubits = max(state.num_circuit_qubits - len(qubits), 1)

        swap_fidelity = (arch.fidelities.cz ** 3) * (arch.fidelities.single_qubit ** 6)
        swap_duration = 3 * arch.durations.cz + 6 * arch.durations.single_qubit
        gate_success = (swap_fidelity ** estimated_swaps) * math.exp(
            -(estimated_swaps * swap_duration * idle_qubits) / t_eff)

        move_duration = (arch.durations.aod_activation + arch.durations.aod_deactivation
                         + arch.shuttle_move_duration(
                             move_distance / estimated_moves if estimated_moves else 0.0))
        shuttle_success = (arch.fidelities.shuttling ** estimated_moves) * math.exp(
            -(estimated_moves * move_duration * idle_qubits) / t_eff)

        return GateCostEstimate(
            gate_index=gate_index,
            estimated_swaps=estimated_swaps,
            estimated_moves=estimated_moves,
            estimated_move_distance_um=move_distance,
            success_gate_based=gate_success,
            success_shuttling_based=shuttle_success,
        )

    def _estimate_swaps(self, state: MappingState, qubits: Sequence[int]) -> int:
        """Estimated SWAP count: hops to gather all qubits around the most central one."""
        if len(qubits) == 2:
            return state.swap_distance(qubits[0], qubits[1])
        # For multi-qubit gates gather everyone around the qubit with the
        # smallest summed distance to the others.
        best_total = None
        for anchor in qubits:
            total = 0
            for other in qubits:
                if other == anchor:
                    continue
                total += state.swap_distance(anchor, other)
            if best_total is None or total < best_total:
                best_total = total
        return best_total or 0

    def _estimate_moves(self, state: MappingState,
                        qubits: Sequence[int]) -> Tuple[int, float]:
        """Estimated move count and summed rectangular travel distance.

        Every gate qubit that is not already within the interaction radius of
        the chosen anchor needs one direct move; if the anchor's vicinity has
        fewer free sites than moving qubits, the missing ones additionally
        need a move-away (two moves per qubit).
        """
        arch = self.architecture
        topology = arch.topology
        if len(qubits) == 2 and state.qubits_adjacent(qubits[0], qubits[1]):
            # Already within the interaction radius: no anchor needs a move,
            # matching what the anchor loop below would conclude — without
            # reading any occupancy (the free counts never influence a gate
            # with nothing to move).
            self._last_free_counts = None
            return (0, 0.0)
        best: Optional[Tuple[int, float]] = None
        free_counts = []
        for anchor in qubits:
            anchor_site = state.site_of_qubit(anchor)
            moving = []
            for other in qubits:
                if other == anchor:
                    continue
                if not state.qubits_adjacent(anchor, other):
                    moving.append(other)
            free_nearby = state.num_free_sites_near(anchor_site)
            free_counts.append(free_nearby)
            move_aways = max(len(moving) - free_nearby, 0)
            moves = len(moving) + move_aways
            anchor_row = topology.rectangular_row(anchor_site)
            distance = sum(anchor_row[state.site_of_qubit(other)]
                           for other in moving)
            distance += move_aways * topology.spacing  # each move-away travels ~ one site
            if best is None or moves < best[0] or (moves == best[0] and distance < best[1]):
                best = (moves, distance)
        self._last_free_counts = tuple(free_counts)
        return best if best is not None else (0, 0.0)

    def _gate_sites_entangling(self, state: MappingState, gate: Gate) -> bool:
        """True if every gate qubit currently sits on an entangling-capable site."""
        is_entangling = self.architecture.is_entangling_site
        site_of_qubit = state.site_of_qubit
        return all(is_entangling(site_of_qubit(q)) for q in gate.qubits)

    # ------------------------------------------------------------------
    # Decision
    # ------------------------------------------------------------------
    def decide(self, state: MappingState, gate: Gate, gate_index: int) -> CapabilityDecision:
        """Assign one gate to gate-based or shuttling-based mapping.

        With a wired cross-round cache an unchanged occupancy region replays
        the cached verdict; the estimate only inspects the gate qubits' sites
        and their interaction neighbourhoods, so the replay is exact.
        """
        cache = self.cache
        if cache is not None:
            cached = cache.lookup_decision(state, gate, gate_index)
            if cached is not None:
                return cached
        estimate = self.estimate(state, gate, gate_index)
        if (self._zones_limit_gates and len(gate.qubits) >= 2
                and not self._gate_sites_entangling(state, gate)):
            # A qubit is stranded in a storage zone: only shuttling can
            # carry it into an entangling zone (this overrides even
            # gate-only mode, mirroring the paper's forced fallback for
            # unplaceable multi-qubit gates).  The verdict is a pure
            # function of the gate-qubit sites, so cached replays stay
            # exact.
            decision = CapabilityDecision(gate_index, False, estimate)
        elif self.alpha_shuttling == 0:
            decision = CapabilityDecision(gate_index, True, estimate)
        elif self.alpha_gate == 0:
            decision = CapabilityDecision(gate_index, False, estimate)
        else:
            weighted_gate = self.alpha_gate * estimate.success_gate_based
            weighted_shuttle = self.alpha_shuttling * estimate.success_shuttling_based
            decision = CapabilityDecision(
                gate_index, weighted_gate >= weighted_shuttle, estimate)
        if cache is not None:
            cache.store_decision(state, gate, gate_index, decision,
                                 self._last_free_counts)
        return decision

    def split_layers(self, state: MappingState, nodes: Sequence,
                     ) -> Tuple[List, List, List[CapabilityDecision]]:
        """Split DAG nodes into gate-based and shuttling-based sublayers.

        Returns ``(gate_based_nodes, shuttling_nodes, decisions)`` preserving
        the input order.
        """
        gate_nodes: List = []
        shuttle_nodes: List = []
        decisions: List[CapabilityDecision] = []
        for node in nodes:
            decision = self.decide(state, node.gate, node.index)
            decisions.append(decision)
            if decision.use_gate_based:
                gate_nodes.append(node)
            else:
                shuttle_nodes.append(node)
        return gate_nodes, shuttle_nodes, decisions
