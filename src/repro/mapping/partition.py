"""Circuit-DAG partitioning into weakly-coupled slices.

Sharded intra-circuit routing (ROADMAP item 2) needs the circuit cut into
slices that can be routed independently with as little cross-talk as
possible.  The partitioner implements a **greedy frontier sweep** over the
gate list: slices are contiguous segments of the (topologically ordered)
gate sequence, and each cut is placed at a *low-crossing frontier* — a
position where as few qubits as possible are live on both sides of the cut.
Cutting on contiguous segments keeps every per-qubit gate order trivially
intact, which is what lets the stitcher replay slice streams against the
merged state without re-deriving dependencies (cf. the hierarchical
decomposition of separable workflow-nets: cut where the coupling frontier is
narrow, recurse inside).

Definitions
-----------

* A **cut position** ``p`` splits the gate list into ``gates[:p]`` and
  ``gates[p:]``.
* The **crossing set** of ``p`` is the set of qubits with at least one gate
  strictly before ``p`` *and* at least one gate at/after ``p`` — exactly the
  qubits whose mapping state couples the two sides.
* A cut is **admissible** when its crossing count does not exceed the
  configured bound (``max_cut_qubits``); with no bound every position is
  admissible and the sweep simply picks the locally minimal crossing.

The sweep walks left to right: once the pending slice has reached
``min_slice`` gates it scans the window up to ``max_slice`` for the
admissible position with the lowest crossing count (earliest wins ties) and
cuts there.  When no admissible position exists inside the window the slice
is *extended* past the soft maximum — the cut-qubit bound is a hard
invariant, the maximum slice size is not.  A tail shorter than ``min_slice``
is merged into the final slice, so every slice of a multi-slice plan holds
at least ``min_slice`` gates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.circuit import QuantumCircuit

__all__ = ["CircuitSlice", "PartitionPlan", "partition_circuit",
           "crossing_counts", "slice_subcircuit"]


@dataclass(frozen=True)
class CircuitSlice:
    """One contiguous slice ``gates[start:stop]`` of the partitioned circuit.

    ``cut_qubits`` is the crossing set of the cut *preceding* this slice
    (empty for the first slice): the qubits whose mapping state this slice
    inherits from its predecessors.
    """

    index: int
    start: int
    stop: int
    cut_qubits: Tuple[int, ...]

    @property
    def num_gates(self) -> int:
        return self.stop - self.start

    def gate_indices(self) -> range:
        """Global gate indices covered by this slice, in circuit order."""
        return range(self.start, self.stop)


@dataclass(frozen=True)
class PartitionPlan:
    """Ordered, disjoint, exhaustive slicing of one circuit's gate list."""

    circuit: QuantumCircuit
    slices: Tuple[CircuitSlice, ...]

    @property
    def num_slices(self) -> int:
        return len(self.slices)

    def max_cut_qubits(self) -> int:
        """Largest crossing count over all interior cuts (0 for one slice)."""
        return max((len(s.cut_qubits) for s in self.slices[1:]), default=0)

    def summary(self) -> Dict[str, object]:
        return {
            "num_slices": self.num_slices,
            "slice_sizes": [s.num_gates for s in self.slices],
            "cut_qubits": [len(s.cut_qubits) for s in self.slices[1:]],
        }


def crossing_counts(circuit: QuantumCircuit) -> List[int]:
    """Crossing count for every cut position ``p`` in ``0 .. num_gates``.

    ``result[p]`` is the number of qubits with a gate strictly before ``p``
    and a gate at/after ``p``.  Computed from per-qubit first/last gate
    indices in O(num_gates + num_qubits + len(result)) via a difference
    array: qubit ``q`` crosses exactly the positions
    ``first_use[q] < p <= last_use[q]``.
    """
    gates = circuit.gates
    first_use: Dict[int, int] = {}
    last_use: Dict[int, int] = {}
    for index, gate in enumerate(gates):
        for qubit in gate.qubits:
            first_use.setdefault(qubit, index)
            last_use[qubit] = index
    delta = [0] * (len(gates) + 2)
    for qubit, first in first_use.items():
        last = last_use[qubit]
        if last > first:
            delta[first + 1] += 1
            delta[last + 1] -= 1
    counts: List[int] = []
    running = 0
    for position in range(len(gates) + 1):
        running += delta[position]
        counts.append(running)
    return counts


def partition_circuit(circuit: QuantumCircuit, *,
                      min_slice: int,
                      max_slice: Optional[int] = None,
                      max_cut_qubits: Optional[int] = None) -> PartitionPlan:
    """Greedy frontier sweep partitioning of ``circuit``.

    Parameters
    ----------
    min_slice:
        Minimum gates per slice.  A circuit with fewer than ``2 * min_slice``
        gates yields a single slice (callers treat that as "route serially").
    max_slice:
        Soft slice-size ceiling (default ``4 * min_slice``); exceeded only
        when no admissible cut exists inside the window.
    max_cut_qubits:
        Hard bound on the crossing count of every cut; ``None`` disables the
        bound and the sweep cuts at the locally minimal crossing.
    """
    if min_slice < 1:
        raise ValueError("min_slice must be at least 1")
    if max_slice is None:
        max_slice = 4 * min_slice
    if max_slice < min_slice:
        raise ValueError("max_slice cannot be below min_slice")
    num_gates = len(circuit)
    counts = crossing_counts(circuit)

    cuts: List[int] = []
    start = 0
    while num_gates - start >= 2 * min_slice:
        cut = _best_cut(counts, start, num_gates, min_slice, max_slice,
                        max_cut_qubits)
        if cut is None:
            break  # no admissible frontier anywhere ahead: absorb the tail
        cuts.append(cut)
        start = cut

    slices: List[CircuitSlice] = []
    boundaries = [0] + cuts + [num_gates]
    for index in range(len(boundaries) - 1):
        lo, hi = boundaries[index], boundaries[index + 1]
        cut_qubits = (_crossing_qubits(circuit, lo) if lo > 0 else ())
        slices.append(CircuitSlice(index=index, start=lo, stop=hi,
                                   cut_qubits=cut_qubits))
    return PartitionPlan(circuit=circuit, slices=tuple(slices))


def _best_cut(counts: Sequence[int], start: int, num_gates: int,
              min_slice: int, max_slice: int,
              max_cut_qubits: Optional[int]) -> Optional[int]:
    """Lowest-crossing admissible cut after ``start``; ``None`` if none exists.

    Scans the window ``[start + min_slice, start + max_slice]`` first (the
    remainder must keep room for one more ``min_slice`` slice); when the
    bound rules out every position there, the window slides forward by
    ``max_slice`` at a time — slice size is soft, the cut bound is not.
    """
    window_lo = start + min_slice
    hard_hi = num_gates - min_slice  # leave room for the next slice
    while window_lo <= hard_hi:
        window_hi = min(window_lo + (max_slice - min_slice), hard_hi)
        best: Optional[int] = None
        best_count = None
        for position in range(window_lo, window_hi + 1):
            count = counts[position]
            if max_cut_qubits is not None and count > max_cut_qubits:
                continue
            if best_count is None or count < best_count:
                best, best_count = position, count
        if best is not None:
            return best
        window_lo = window_hi + 1
    return None


def _crossing_qubits(circuit: QuantumCircuit, position: int) -> Tuple[int, ...]:
    """The crossing set of cut ``position`` (sorted qubit indices)."""
    before = set()
    for gate in circuit.gates[:position]:
        before.update(gate.qubits)
    crossing = set()
    for gate in circuit.gates[position:]:
        for qubit in gate.qubits:
            if qubit in before:
                crossing.add(qubit)
    return tuple(sorted(crossing))


def slice_subcircuit(circuit: QuantumCircuit,
                     piece: CircuitSlice) -> QuantumCircuit:
    """Full-width circuit holding exactly the slice's gates, in order.

    The register width is preserved so qubit indices (and therefore mapping
    states) carry over unchanged; gate ``k`` of the subcircuit is gate
    ``piece.start + k`` of the original.
    """
    sub = QuantumCircuit(circuit.num_qubits,
                         name=f"{circuit.name}[s{piece.index}]")
    for gate in circuit.gates[piece.start:piece.stop]:
        sub.append(gate)
    return sub
