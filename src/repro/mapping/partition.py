"""Circuit-DAG partitioning into weakly-coupled slices.

Sharded intra-circuit routing (ROADMAP item 2) needs the circuit cut into
slices that can be routed independently with as little cross-talk as
possible.  The partitioner implements a **greedy frontier sweep** over the
gate list: slices are contiguous segments of the (topologically ordered)
gate sequence, and each cut is placed at a *low-crossing frontier* — a
position where as few qubits as possible are live on both sides of the cut.
Cutting on contiguous segments keeps every per-qubit gate order trivially
intact, which is what lets the stitcher replay slice streams against the
merged state without re-deriving dependencies (cf. the hierarchical
decomposition of separable workflow-nets: cut where the coupling frontier is
narrow, recurse inside).

Definitions
-----------

* A **cut position** ``p`` splits the gate list into ``gates[:p]`` and
  ``gates[p:]``.
* The **crossing set** of ``p`` is the set of qubits with at least one gate
  strictly before ``p`` *and* at least one gate at/after ``p`` — exactly the
  qubits whose mapping state couples the two sides.
* A cut is **admissible** when its crossing count does not exceed the
  configured bound (``max_cut_qubits``); with no bound every position is
  admissible and the sweep simply picks the locally minimal crossing.

The sweep walks left to right: once the pending slice has reached
``min_slice`` gates it scans the window up to ``max_slice`` for the
admissible position with the lowest crossing count (earliest wins ties) and
cuts there.  When no admissible position exists inside the window the slice
is *extended* past the soft maximum — the cut-qubit bound is a hard
invariant, the maximum slice size is not.  A tail shorter than ``min_slice``
is merged into the final slice, so every slice of a multi-slice plan holds
at least ``min_slice`` gates.

Hierarchical partitioning
-------------------------

:func:`partition_circuit_tree` replaces the linear sweep with the recursive
min-cut shape of hierarchical workload decomposition (PWDFT-SW; separable
workflow-nets): any segment above ``max_slice`` gates is re-cut at its own
minimum-crossing admissible frontier (ties broken towards the balanced
midpoint, then towards the earlier position — fully deterministic), and the
recursion continues inside both halves.  The result is a
:class:`PartitionNode` *tree* whose every internal cut honours the hard
``max_cut_qubits`` bound and whose leaves — read left to right — are
exactly the plan's slices, in the deterministic order the streaming
stitcher consumes them.  A segment with no admissible frontier stays an
oversized leaf: as in the sweep, the cut bound is hard, the size bound is
soft.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..circuit.circuit import QuantumCircuit

__all__ = ["CircuitSlice", "PartitionNode", "PartitionPlan",
           "partition_circuit", "partition_circuit_tree", "crossing_counts",
           "slice_subcircuit"]


@dataclass(frozen=True)
class CircuitSlice:
    """One contiguous slice ``gates[start:stop]`` of the partitioned circuit.

    ``cut_qubits`` is the crossing set of the cut *preceding* this slice
    (empty for the first slice): the qubits whose mapping state this slice
    inherits from its predecessors.
    """

    index: int
    start: int
    stop: int
    cut_qubits: Tuple[int, ...]

    @property
    def num_gates(self) -> int:
        return self.stop - self.start

    def gate_indices(self) -> range:
        """Global gate indices covered by this slice, in circuit order."""
        return range(self.start, self.stop)


@dataclass(frozen=True)
class PartitionNode:
    """One node of the hierarchical partition tree over ``gates[start:stop]``.

    Internal nodes record the cut that split them (``cut`` is an absolute
    gate-list position, ``cut_count`` its crossing count — bounded by
    ``max_cut_qubits`` at *every* level); leaves have no children and become
    the plan's slices.  ``height`` is 1 for a leaf and grows towards the
    root, so the root's height is the tree depth.
    """

    start: int
    stop: int
    cut: Optional[int]
    cut_count: int
    height: int
    children: Tuple["PartitionNode", ...] = ()

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def num_gates(self) -> int:
        return self.stop - self.start

    def leaves(self) -> Iterator["PartitionNode"]:
        """Leaf nodes left to right — the deterministic stitch order."""
        stack = [self]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                yield node
            else:
                stack.extend(reversed(node.children))

    def internal_nodes(self) -> Iterator["PartitionNode"]:
        """Every non-leaf node (pre-order)."""
        stack = [self]
        while stack:
            node = stack.pop()
            if not node.is_leaf:
                yield node
                stack.extend(reversed(node.children))


@dataclass(frozen=True)
class PartitionPlan:
    """Ordered, disjoint, exhaustive slicing of one circuit's gate list.

    ``tree`` is the hierarchical partition tree when the plan was built by
    :func:`partition_circuit_tree` (its left-to-right leaves are exactly
    ``slices``), ``None`` for the flat greedy sweep.
    """

    circuit: QuantumCircuit
    slices: Tuple[CircuitSlice, ...]
    tree: Optional[PartitionNode] = field(default=None, compare=False)

    @property
    def num_slices(self) -> int:
        return len(self.slices)

    def max_cut_qubits(self) -> int:
        """Largest crossing count over all interior cuts (0 for one slice)."""
        return max((len(s.cut_qubits) for s in self.slices[1:]), default=0)

    @property
    def tree_depth(self) -> int:
        """Depth of the partition tree (1 = unsplit root / flat plan)."""
        return self.tree.height if self.tree is not None else 1

    def summary(self) -> Dict[str, object]:
        return {
            "num_slices": self.num_slices,
            "slice_sizes": [s.num_gates for s in self.slices],
            "cut_qubits": [len(s.cut_qubits) for s in self.slices[1:]],
            "tree_depth": self.tree_depth,
        }


def crossing_counts(circuit: QuantumCircuit) -> List[int]:
    """Crossing count for every cut position ``p`` in ``0 .. num_gates``.

    ``result[p]`` is the number of qubits with a gate strictly before ``p``
    and a gate at/after ``p``.  Computed from per-qubit first/last gate
    indices in O(num_gates + num_qubits + len(result)) via a difference
    array: qubit ``q`` crosses exactly the positions
    ``first_use[q] < p <= last_use[q]``.
    """
    gates = circuit.gates
    first_use: Dict[int, int] = {}
    last_use: Dict[int, int] = {}
    for index, gate in enumerate(gates):
        for qubit in gate.qubits:
            first_use.setdefault(qubit, index)
            last_use[qubit] = index
    delta = [0] * (len(gates) + 2)
    for qubit, first in first_use.items():
        last = last_use[qubit]
        if last > first:
            delta[first + 1] += 1
            delta[last + 1] -= 1
    counts: List[int] = []
    running = 0
    for position in range(len(gates) + 1):
        running += delta[position]
        counts.append(running)
    return counts


def partition_circuit(circuit: QuantumCircuit, *,
                      min_slice: int,
                      max_slice: Optional[int] = None,
                      max_cut_qubits: Optional[int] = None) -> PartitionPlan:
    """Greedy frontier sweep partitioning of ``circuit``.

    Parameters
    ----------
    min_slice:
        Minimum gates per slice.  A circuit with fewer than ``2 * min_slice``
        gates yields a single slice (callers treat that as "route serially").
    max_slice:
        Soft slice-size ceiling (default ``4 * min_slice``); exceeded only
        when no admissible cut exists inside the window.
    max_cut_qubits:
        Hard bound on the crossing count of every cut; ``None`` disables the
        bound and the sweep cuts at the locally minimal crossing.
    """
    if min_slice < 1:
        raise ValueError("min_slice must be at least 1")
    if max_slice is None:
        max_slice = 4 * min_slice
    if max_slice < min_slice:
        raise ValueError("max_slice cannot be below min_slice")
    num_gates = len(circuit)
    counts = crossing_counts(circuit)

    cuts: List[int] = []
    start = 0
    while num_gates - start >= 2 * min_slice:
        cut = _best_cut(counts, start, num_gates, min_slice, max_slice,
                        max_cut_qubits)
        if cut is None:
            break  # no admissible frontier anywhere ahead: absorb the tail
        cuts.append(cut)
        start = cut

    return PartitionPlan(circuit=circuit,
                         slices=_slices_for_boundaries(circuit, cuts, num_gates))


def partition_circuit_tree(circuit: QuantumCircuit, *,
                           min_slice: int,
                           max_slice: Optional[int] = None,
                           max_cut_qubits: Optional[int] = None
                           ) -> PartitionPlan:
    """Hierarchical (recursive min-cut) partitioning of ``circuit``.

    Any segment above ``max_slice`` gates is split at its own
    minimum-crossing admissible frontier — crossing count first, then
    distance to the segment midpoint, then the earlier position, so the
    tree (and therefore the leaf order) is fully deterministic.  Both
    halves keep at least ``min_slice`` gates and the recursion continues
    inside them; a segment with no admissible frontier stays an oversized
    leaf (the ``max_cut_qubits`` bound is hard at every level, the size
    bound is soft).  Parameters match :func:`partition_circuit`.
    """
    if min_slice < 1:
        raise ValueError("min_slice must be at least 1")
    if max_slice is None:
        max_slice = 4 * min_slice
    if max_slice < min_slice:
        raise ValueError("max_slice cannot be below min_slice")
    num_gates = len(circuit)
    counts = crossing_counts(circuit)

    # Iterative post-order construction (the tree can be min_slice-deep on
    # pathological inputs, which would blow the recursion limit).
    nodes: Dict[Tuple[int, int], PartitionNode] = {}
    pending_cut: Dict[Tuple[int, int], int] = {}
    stack: List[Tuple[int, int, bool]] = [(0, num_gates, False)]
    while stack:
        lo, hi, expanded = stack.pop()
        if expanded:
            cut = pending_cut.pop((lo, hi))
            left, right = nodes.pop((lo, cut)), nodes.pop((cut, hi))
            nodes[(lo, hi)] = PartitionNode(
                start=lo, stop=hi, cut=cut, cut_count=counts[cut],
                height=1 + max(left.height, right.height),
                children=(left, right))
            continue
        cut = _best_tree_cut(counts, lo, hi, min_slice, max_slice,
                             max_cut_qubits)
        if cut is None:
            nodes[(lo, hi)] = PartitionNode(start=lo, stop=hi, cut=None,
                                            cut_count=0, height=1)
        else:
            pending_cut[(lo, hi)] = cut
            stack.append((lo, hi, True))
            stack.append((cut, hi, False))
            stack.append((lo, cut, False))
    root = nodes[(0, num_gates)]

    cuts = [leaf.start for leaf in root.leaves()][1:]
    return PartitionPlan(circuit=circuit,
                         slices=_slices_for_boundaries(circuit, cuts,
                                                       num_gates),
                         tree=root)


def _best_tree_cut(counts: Sequence[int], lo: int, hi: int,
                   min_slice: int, max_slice: int,
                   max_cut_qubits: Optional[int]) -> Optional[int]:
    """Best admissible split of segment ``[lo, hi)``; ``None`` keeps it a leaf.

    A segment at or below ``max_slice`` gates never splits.  Otherwise the
    admissible range ``[lo + min_slice, hi - min_slice]`` is scanned for the
    minimum crossing count, ties broken by distance to the segment midpoint
    (balance) and then by the earlier position (determinism).
    """
    if hi - lo <= max_slice:
        return None
    range_lo, range_hi = lo + min_slice, hi - min_slice
    if range_lo > range_hi:
        return None
    mid2 = lo + hi  # 2 * midpoint, keeps the distance tie-break integral
    best: Optional[int] = None
    best_key: Optional[Tuple[int, int]] = None
    for position in range(range_lo, range_hi + 1):
        count = counts[position]
        if max_cut_qubits is not None and count > max_cut_qubits:
            continue
        key = (count, abs(2 * position - mid2))
        if best_key is None or key < best_key:
            best, best_key = position, key
    return best


def _slices_for_boundaries(circuit: QuantumCircuit, cuts: Sequence[int],
                           num_gates: int) -> Tuple[CircuitSlice, ...]:
    """Materialise :class:`CircuitSlice` objects for the given interior cuts."""
    intervals = _qubit_intervals(circuit)
    slices: List[CircuitSlice] = []
    boundaries = [0] + list(cuts) + [num_gates]
    for index in range(len(boundaries) - 1):
        lo, hi = boundaries[index], boundaries[index + 1]
        cut_qubits = (_crossing_from_intervals(intervals, lo) if lo > 0
                      else ())
        slices.append(CircuitSlice(index=index, start=lo, stop=hi,
                                   cut_qubits=cut_qubits))
    return tuple(slices)


def _best_cut(counts: Sequence[int], start: int, num_gates: int,
              min_slice: int, max_slice: int,
              max_cut_qubits: Optional[int]) -> Optional[int]:
    """Lowest-crossing admissible cut after ``start``; ``None`` if none exists.

    Scans the window ``[start + min_slice, start + max_slice]`` first (the
    remainder must keep room for one more ``min_slice`` slice); when the
    bound rules out every position there, the window slides forward by
    ``max_slice`` at a time — slice size is soft, the cut bound is not.
    """
    window_lo = start + min_slice
    hard_hi = num_gates - min_slice  # leave room for the next slice
    while window_lo <= hard_hi:
        window_hi = min(window_lo + (max_slice - min_slice), hard_hi)
        best: Optional[int] = None
        best_count = None
        for position in range(window_lo, window_hi + 1):
            count = counts[position]
            if max_cut_qubits is not None and count > max_cut_qubits:
                continue
            if best_count is None or count < best_count:
                best, best_count = position, count
        if best is not None:
            return best
        window_lo = window_hi + 1
    return None


def _qubit_intervals(circuit: QuantumCircuit) -> Dict[int, Tuple[int, int]]:
    """Per-qubit ``(first_use, last_use)`` gate indices."""
    intervals: Dict[int, Tuple[int, int]] = {}
    for index, gate in enumerate(circuit.gates):
        for qubit in gate.qubits:
            first = intervals.get(qubit)
            intervals[qubit] = (index if first is None else first[0], index)
    return intervals


def _crossing_from_intervals(intervals: Dict[int, Tuple[int, int]],
                             position: int) -> Tuple[int, ...]:
    """The crossing set of cut ``position`` (sorted qubit indices).

    A qubit crosses exactly when it has a gate strictly before the cut and
    one at/after it: ``first_use < position <= last_use``.
    """
    return tuple(sorted(
        qubit for qubit, (first, last) in intervals.items()
        if first < position <= last))


def _crossing_qubits(circuit: QuantumCircuit, position: int) -> Tuple[int, ...]:
    """The crossing set of cut ``position`` (sorted qubit indices)."""
    return _crossing_from_intervals(_qubit_intervals(circuit), position)


def slice_subcircuit(circuit: QuantumCircuit,
                     piece: CircuitSlice) -> QuantumCircuit:
    """Full-width circuit holding exactly the slice's gates, in order.

    The register width is preserved so qubit indices (and therefore mapping
    states) carry over unchanged; gate ``k`` of the subcircuit is gate
    ``piece.start + k`` of the original.
    """
    sub = QuantumCircuit(circuit.num_qubits,
                         name=f"{circuit.name}[s{piece.index}]")
    for gate in circuit.gates[piece.start:piece.stop]:
        sub.append(gate)
    return sub
