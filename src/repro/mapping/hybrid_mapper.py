"""The hybrid mapping process (Section 3.2, Figure 4).

:class:`HybridMapper` ties the five building blocks together:

1. **Layer creation** — :class:`~repro.mapping.layers.LayerManager` maintains
   the commutation-aware front and lookahead layers.
2. **Capability decision** — :class:`~repro.mapping.decision.CapabilityDecider`
   assigns every front/lookahead gate to gate-based or shuttling-based
   mapping by weighing approximate success probabilities with
   ``alpha_g``/``alpha_s``.
3. **Gate-based mapping** — :class:`~repro.mapping.gate_router.GateRouter`
   selects SWAPs; multi-qubit gates first receive an explicit target
   position via :func:`~repro.mapping.multiqubit.find_gate_position` and fall
   back to shuttling when no position exists.
4. **Shuttling-based mapping** —
   :class:`~repro.mapping.shuttling_router.ShuttlingRouter` builds and ranks
   move chains.  Following the paper, shuttling is only performed once the
   gate-based front layer is empty, so the two capabilities cannot conflict
   within one routing round.
5. **Processing to hardware operations** — performed downstream by
   :mod:`repro.scheduling`; the mapper emits the operation stream
   (:class:`~repro.mapping.result.MappingResult`) it consumes.

The mapper additionally implements a deterministic fallback: if the greedy
cost minimisation fails to execute any gate for ``stall_threshold``
consecutive routing operations, the oldest front-layer gate is routed
explicitly along shortest paths (or via a forced move chain), which
guarantees termination.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Set

from ..circuit.circuit import QuantumCircuit
from ..circuit.dag import DAGNode
from ..circuit.gate import GateKind
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from ..telemetry import tracing
from ..telemetry.registry import get_registry
from .config import MapperConfig
from .decision import CapabilityDecider
from .gate_router import GateRouter, SwapCandidate
from .layers import LayerManager
from .multiqubit import GatePosition, find_gate_position
from .regioncache import CrossRoundCache
from .result import CircuitGateOp, MappingResult, ShuttleOp, SwapOp
from .shuttling_router import ShuttlingRouter
from .state import MappingState

__all__ = ["HybridMapper", "MappingError"]


class MappingError(RuntimeError):
    """Raised when the mapper cannot make progress within its safety bounds."""


class HybridMapper:
    """Hybrid gate/shuttling circuit mapper for neutral-atom hardware.

    Parameters
    ----------
    architecture:
        Target device description.
    config:
        Mapper parameters; defaults to the paper's hybrid configuration.
    connectivity:
        Optional pre-built :class:`SiteConnectivity` shared across runs.
    """

    def __init__(self, architecture: NeutralAtomArchitecture,
                 config: Optional[MapperConfig] = None,
                 connectivity: Optional[SiteConnectivity] = None) -> None:
        self.architecture = architecture
        self.config = config or MapperConfig()
        self.connectivity = connectivity or SiteConnectivity(architecture)
        self.decider = CapabilityDecider(
            architecture,
            alpha_gate=self.config.alpha_gate,
            alpha_shuttling=self.config.alpha_shuttling,
        )
        self.gate_router = GateRouter(
            architecture,
            lookahead_weight=self.config.lookahead_weight,
            decay_rate=self.config.decay_rate,
            recency_window=self.config.history_window,
        )
        self.shuttling_router = ShuttlingRouter(
            architecture,
            lookahead_weight=self.config.lookahead_weight,
            time_weight=self.config.time_weight,
            history_window=self.config.history_window,
            chain_kernel=self.config.chain_kernel,
        )
        # Cross-round routing caches (decisions + move chains) with
        # occupancy-region invalidation; bit-identical op stream either way.
        self.region_cache: Optional[CrossRoundCache] = None
        if self.config.cross_round_cache:
            self.region_cache = CrossRoundCache()
            self.decider.cache = self.region_cache
            self.shuttling_router.chain_cache = self.region_cache

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def map(self, circuit: QuantumCircuit,
            initial_state: Optional[MappingState] = None) -> MappingResult:
        """Map ``circuit`` onto the architecture and return the operation stream."""
        with tracing.span("mapper.map", circuit=circuit.name,
                          mode=self.config.mode,
                          num_qubits=circuit.num_qubits):
            return self._map_impl(circuit, initial_state)

    def _map_impl(self, circuit: QuantumCircuit,
                  initial_state: Optional[MappingState]) -> MappingResult:
        start_time = time.perf_counter()
        if circuit.num_qubits > self.architecture.num_atoms:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits but the architecture "
                f"provides only {self.architecture.num_atoms} atoms")

        if self.config.shard_routing:
            from .shard import ShardedRouter

            sharded = ShardedRouter(self.architecture, self.config,
                                    self.connectivity)
            result = sharded.map(circuit, initial_state=initial_state)
            if result is not None:
                return result
            # Fewer than two slices: fall through to the serial path below,
            # which stays bit-identical to the shard_routing=False stream
            # (the serial-fallback guard of the sharding contract).

        state = initial_state or MappingState(
            self.architecture, circuit.num_qubits, connectivity=self.connectivity)
        layers = LayerManager(circuit, lookahead_depth=self.config.lookahead_depth,
                              use_commutation=self.config.use_commutation)
        result = MappingResult(
            circuit=circuit,
            mode=self.config.mode,
            initial_qubit_map=state.qubit_mapping(),
            initial_atom_map=state.atom_mapping(),
        )

        self.gate_router.reset()
        self.shuttling_router.reset()
        if self.region_cache is not None:
            self.region_cache.begin_run(state)

        positions: Dict[int, GatePosition] = {}
        routed_by: Dict[int, str] = {}
        shuttle_forced: Set[int] = set()
        stall_threshold = self._stall_threshold()
        max_steps = self._max_routing_steps(circuit)
        routing_steps = 0
        steps_since_execution = 0
        stage_seconds = {"execute": 0.0, "decide": 0.0,
                         "gate_route": 0.0, "shuttle_route": 0.0}

        while not layers.is_finished():
            tick = time.perf_counter()
            # (1) Forward gates that need no routing.
            for node in layers.drain_trivial_gates():
                self._emit_circuit_gate(result, state, node)
            if layers.is_finished():
                stage_seconds["execute"] += time.perf_counter() - tick
                break

            front = layers.front_layer()
            if not front:
                stage_seconds["execute"] += time.perf_counter() - tick
                continue

            # Execute every front gate that is already satisfied.
            executed_any = False
            for node in front:
                if state.gate_executable(node.gate):
                    self._emit_circuit_gate(result, state, node)
                    layers.execute(node)
                    positions.pop(node.index, None)
                    capability = routed_by.pop(node.index, None)
                    if capability == "gate":
                        result.num_gate_routed += 1
                    elif capability == "shuttle":
                        result.num_shuttle_routed += 1
                    else:
                        result.num_trivially_executable += 1
                    executed_any = True
            stage_seconds["execute"] += time.perf_counter() - tick
            if executed_any:
                steps_since_execution = 0
                continue

            tick = time.perf_counter()
            lookahead = layers.lookahead_layer()

            # (2) Decide the mapping capability per gate.
            gate_nodes, shuttle_nodes, _ = self.decider.split_layers(state, front)
            gate_lookahead, shuttle_lookahead, _ = self.decider.split_layers(state, lookahead)
            gate_nodes, shuttle_nodes = self._apply_forced_shuttle(
                gate_nodes, shuttle_nodes, shuttle_forced)

            # (3a) Multi-qubit gate positions; fall back to shuttling when none exists.
            gate_nodes, shuttle_nodes = self._refresh_positions(
                state, gate_nodes, shuttle_nodes, positions, shuttle_forced, result)

            for node in gate_nodes:
                routed_by.setdefault(node.index, "gate")
            for node in shuttle_nodes:
                routed_by[node.index] = "shuttle"
            stage_seconds["decide"] += time.perf_counter() - tick

            forced = steps_since_execution >= stall_threshold

            # (3) Gate-based mapping has priority; (4) shuttling runs only when
            # the gate-based front layer is empty.
            if gate_nodes:
                tick = time.perf_counter()
                progressed = self._gate_based_step(
                    result, state, gate_nodes, gate_lookahead, positions, forced,
                    qubit_index=layers.qubit_node_index())
                stage_seconds["gate_route"] += time.perf_counter() - tick
                if not progressed:
                    # No SWAP candidate at all (isolated atom): re-route the
                    # offending gates via shuttling on the next iteration.
                    for node in gate_nodes:
                        shuttle_forced.add(node.index)
                        result.num_fallback_reroutes += 1
            elif shuttle_nodes:
                tick = time.perf_counter()
                progressed = self._shuttling_step(
                    result, state, shuttle_nodes, shuttle_lookahead, forced)
                stage_seconds["shuttle_route"] += time.perf_counter() - tick
                if not progressed:
                    raise MappingError(
                        "shuttling router could not construct any move chain; "
                        "the lattice has no reachable free trap")
            else:  # pragma: no cover - defensive
                raise MappingError("front layer is non-empty but no capability was selected")

            routing_steps += 1
            steps_since_execution += 1
            if routing_steps > max_steps:
                raise MappingError(
                    f"exceeded the safety bound of {max_steps} routing operations; "
                    "the mapping process is not converging")

        result.verify_complete()
        result.final_qubit_map = state.qubit_mapping()
        result.final_atom_map = state.atom_mapping()
        result.stage_seconds = stage_seconds
        result.runtime_seconds = time.perf_counter() - start_time
        registry = get_registry()
        for stage, seconds in stage_seconds.items():
            registry.histogram(
                "repro_mapper_stage_seconds",
                help="Wall time per hybrid-mapper stage, accumulated per run",
                labels={"stage": stage}).observe(seconds)
        return result

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------
    def _emit_circuit_gate(self, result: MappingResult, state: MappingState,
                           node: DAGNode) -> None:
        gate = node.gate
        if gate.kind == GateKind.BARRIER:
            return
        atoms = tuple(state.atom_of_qubit(q) for q in gate.qubits)
        sites = tuple(state.site_of_atom(a) for a in atoms)
        result.append(CircuitGateOp(gate=gate, gate_index=node.index,
                                    atoms=atoms, sites=sites))

    # ------------------------------------------------------------------
    # Capability bookkeeping
    # ------------------------------------------------------------------
    @staticmethod
    def _apply_forced_shuttle(gate_nodes: List[DAGNode], shuttle_nodes: List[DAGNode],
                              shuttle_forced: Set[int]):
        """Move gates that previously failed gate-based mapping to the shuttling layer."""
        if not shuttle_forced:
            return gate_nodes, shuttle_nodes
        still_gate = [node for node in gate_nodes if node.index not in shuttle_forced]
        forced = [node for node in gate_nodes if node.index in shuttle_forced]
        return still_gate, shuttle_nodes + forced

    def _refresh_positions(self, state: MappingState, gate_nodes: List[DAGNode],
                           shuttle_nodes: List[DAGNode],
                           positions: Dict[int, GatePosition],
                           shuttle_forced: Set[int],
                           result: MappingResult):
        """(Re)compute target positions for multi-qubit gate-based gates.

        A cached position is invalidated when one of its sites lost its atom,
        or when a gate qubit that had already reached its assigned site was
        displaced again (both can happen through shuttling moves — the
        mapping-conflict challenge of Section 3.1.2; see
        :meth:`_cached_position_valid`).  Gates without any feasible position
        are transferred to the shuttling layer, unless shuttling is disabled
        entirely, in which case the mapper keeps trying gate-based routing
        and will raise if it cannot make progress.
        """
        remaining_gate_nodes: List[DAGNode] = []
        for node in gate_nodes:
            gate = node.gate
            if gate.num_qubits < 3:
                remaining_gate_nodes.append(node)
                continue
            cached = positions.get(node.index)
            if cached is not None and self._cached_position_valid(state, cached):
                remaining_gate_nodes.append(node)
                continue
            position = find_gate_position(state, gate)
            if position is not None:
                positions[node.index] = position
                remaining_gate_nodes.append(node)
                continue
            positions.pop(node.index, None)
            # Even in gate-only mode an unplaceable multi-qubit gate must
            # fall back to shuttling — the paper prescribes exactly this
            # (Section 3.1.3); it is counted as a fallback re-route.
            shuttle_forced.add(node.index)
            shuttle_nodes = shuttle_nodes + [node]
            result.num_fallback_reroutes += 1
        return remaining_gate_nodes, shuttle_nodes

    @staticmethod
    def _cached_position_valid(state: MappingState, position: GatePosition) -> bool:
        """Whether a cached multi-qubit position may be reused this round.

        Occupancy alone is not enough: after a shuttling move displaced a
        gate atom off its assigned site, a *different* atom can refill the
        trap, so "all sites occupied" would keep a stale assignment and the
        SWAP router would drive the displaced qubit to a position computed
        for a layout that no longer exists.  The cache therefore tracks
        which gate qubits have reached their assigned site (``arrived``) and
        invalidates as soon as one of them is found elsewhere.
        """
        for site in position.sites:
            if state.site_is_free(site):
                return False
        for qubit, site in position.assignment.items():
            at_assigned_site = state.site_of_qubit(qubit) == site
            if not at_assigned_site and qubit in position.arrived:
                return False
            if at_assigned_site:
                position.arrived.add(qubit)
        return True

    # ------------------------------------------------------------------
    # Routing steps
    # ------------------------------------------------------------------
    def _gate_based_step(self, result: MappingResult, state: MappingState,
                         gate_nodes: Sequence[DAGNode],
                         lookahead_nodes: Sequence[DAGNode],
                         positions: Dict[int, GatePosition],
                         forced: bool, *,
                         qubit_index: Optional[Dict[int, List[DAGNode]]] = None
                         ) -> bool:
        """Insert one SWAP (or, when forced, a whole deterministic SWAP path).

        ``qubit_index`` is the layer manager's qubit → node inverted index,
        forwarded to the router's incremental cost engine.  Returns False if
        no candidate exists at all.
        """
        if forced:
            oldest = min(gate_nodes, key=lambda node: node.index)
            applied = self.gate_router.forced_route_swaps(
                state, oldest.gate, positions.get(oldest.index))
            if applied:
                for candidate in applied:
                    self.gate_router.note_swap_applied(state, candidate)
                    self._record_swap(result, candidate)
                return True
        candidate = self.gate_router.best_swap(
            state, gate_nodes, lookahead_nodes, positions, qubit_index=qubit_index)
        if candidate is None:
            return False
        state.apply_swap_with_atom(candidate.qubit_a, candidate.atom_b)
        self.gate_router.note_swap_applied(state, candidate)
        self._record_swap(result, candidate)
        return True

    @staticmethod
    def _record_swap(result: MappingResult, candidate: SwapCandidate) -> None:
        result.append(SwapOp(
            qubit_a=candidate.qubit_a,
            qubit_b=candidate.qubit_b if candidate.qubit_b is not None else -1,
            atom_a=candidate.atom_a,
            atom_b=candidate.atom_b,
            site_a=candidate.site_a,
            site_b=candidate.site_b,
        ))

    def _shuttling_step(self, result: MappingResult, state: MappingState,
                        shuttle_nodes: Sequence[DAGNode],
                        lookahead_nodes: Sequence[DAGNode],
                        forced: bool) -> bool:
        """Execute one move chain; returns False if no chain could be built."""
        chain = None
        if not forced:
            chain = self.shuttling_router.best_chain(state, shuttle_nodes, lookahead_nodes)
        if chain is None:
            oldest = min(shuttle_nodes, key=lambda node: node.index)
            chain = self.shuttling_router.best_chain(state, [oldest], lookahead_nodes)
        if chain is None:
            oldest = min(shuttle_nodes, key=lambda node: node.index)
            chain = self.shuttling_router.forced_chain(state, oldest)
        if chain is None:
            return False
        applied = []
        for move in chain:
            state.apply_move(move)
            result.append(ShuttleOp(move=move))
            applied.append(move)
        self.shuttling_router.note_moves_applied(applied)
        return True

    # ------------------------------------------------------------------
    # Safety bounds
    # ------------------------------------------------------------------
    def _stall_threshold(self) -> int:
        if self.config.stall_threshold is not None:
            return self.config.stall_threshold
        topology = self.architecture.topology
        return (topology.rows + topology.cols) + 10

    def _max_routing_steps(self, circuit: QuantumCircuit) -> int:
        if self.config.max_routing_steps is not None:
            return self.config.max_routing_steps
        topology = self.architecture.topology
        per_gate = 8 * (topology.rows + topology.cols) + 50
        return max(per_gate * max(circuit.num_entangling_gates(), 1), 10_000)
