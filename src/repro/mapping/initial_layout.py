"""Initial layout strategies.

The paper's evaluation uses the trivial identity layout
(``q_i <-> Q_i <-> C_i``), which this module provides as the default, but it
also notes that the hybrid process opens new research questions around the
interplay of circuit structure and mapping capability.  The additional
strategies here are the extension point for that study:

* ``identity`` — the paper's choice; atom ``a`` sits on site ``a`` and holds
  circuit qubit ``a``.
* ``compact`` — atoms are placed on a centred square block of the lattice so
  that the average pairwise distance (and therefore the routing effort of the
  very first layers) is minimised.
* ``interaction_graph`` — circuit qubits are assigned to the compact block in
  descending order of their two-qubit interaction degree, placing strongly
  coupled qubits near the block centre.  This is the classic
  "interaction-graph placement" heuristic adapted to the NA setting.

Every strategy returns a ready-to-use :class:`~repro.mapping.state.MappingState`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence

from ..circuit.circuit import QuantumCircuit
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from .state import MappingState

__all__ = ["identity_layout", "compact_layout", "interaction_graph_layout",
           "create_initial_state", "LAYOUT_STRATEGIES"]


def _centred_block_sites(architecture: NeutralAtomArchitecture, count: int) -> List[int]:
    """The ``count`` sites closest to the grid centre (deterministic order)."""
    topology = architecture.topology
    centre_row = (topology.rows - 1) / 2.0
    centre_col = (topology.cols - 1) / 2.0

    def distance_to_centre(site: int) -> float:
        row, col = topology.row_col(site)
        return (row - centre_row) ** 2 + (col - centre_col) ** 2

    ranked = sorted(range(topology.num_sites), key=lambda s: (distance_to_centre(s), s))
    return ranked[:count]


def identity_layout(architecture: NeutralAtomArchitecture, num_circuit_qubits: int,
                    connectivity: Optional[SiteConnectivity] = None) -> MappingState:
    """The paper's trivial layout: ``q_i <-> Q_i <-> C_i``."""
    return MappingState(architecture, num_circuit_qubits, connectivity=connectivity)


def compact_layout(architecture: NeutralAtomArchitecture, num_circuit_qubits: int,
                   connectivity: Optional[SiteConnectivity] = None) -> MappingState:
    """Place all atoms on a centred block; circuit qubits keep identity order."""
    sites = _centred_block_sites(architecture, architecture.num_atoms)
    return MappingState(architecture, num_circuit_qubits, connectivity=connectivity,
                        initial_sites=sites)


def _interaction_degrees(circuit: QuantumCircuit) -> Dict[int, int]:
    """Number of entangling gates each circuit qubit participates in."""
    degrees: Dict[int, int] = defaultdict(int)
    for gate in circuit:
        if not gate.is_entangling:
            continue
        for qubit in gate.qubits:
            degrees[qubit] += 1
    return degrees


def interaction_graph_layout(architecture: NeutralAtomArchitecture,
                             circuit: QuantumCircuit,
                             connectivity: Optional[SiteConnectivity] = None
                             ) -> MappingState:
    """Place strongly interacting circuit qubits near the centre of a compact block.

    Atoms occupy the same centred block as :func:`compact_layout`; the qubit
    mapping assigns the circuit qubit with the highest entangling-gate count
    to the atom closest to the block centre, the second-highest to the second
    closest, and so on.  Unused atoms remain auxiliary.
    """
    num_circuit_qubits = circuit.num_qubits
    if num_circuit_qubits > architecture.num_atoms:
        raise ValueError("circuit does not fit onto the architecture")
    sites = _centred_block_sites(architecture, architecture.num_atoms)
    degrees = _interaction_degrees(circuit)
    # Atoms are indexed in block order, i.e. atom 0 sits closest to the centre.
    qubits_by_degree = sorted(range(num_circuit_qubits),
                              key=lambda q: (-degrees.get(q, 0), q))
    qubit_to_atom = [0] * num_circuit_qubits
    for atom_index, qubit in enumerate(qubits_by_degree):
        qubit_to_atom[qubit] = atom_index
    return MappingState(architecture, num_circuit_qubits, connectivity=connectivity,
                        initial_sites=sites, initial_qubit_map=qubit_to_atom)


#: Registry of named strategies usable from configuration files / CLIs.
LAYOUT_STRATEGIES = ("identity", "compact", "interaction_graph")


def create_initial_state(strategy: str, architecture: NeutralAtomArchitecture,
                         circuit: QuantumCircuit,
                         connectivity: Optional[SiteConnectivity] = None) -> MappingState:
    """Build the initial :class:`MappingState` for a named strategy."""
    lowered = strategy.lower()
    if lowered == "identity":
        return identity_layout(architecture, circuit.num_qubits, connectivity)
    if lowered == "compact":
        return compact_layout(architecture, circuit.num_qubits, connectivity)
    if lowered == "interaction_graph":
        return interaction_graph_layout(architecture, circuit, connectivity)
    raise ValueError(f"unknown layout strategy {strategy!r}; "
                     f"choose from {LAYOUT_STRATEGIES}")
