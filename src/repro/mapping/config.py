"""Mapper configuration.

Collects every tunable of the hybrid mapping process in one place.  The
defaults reproduce the parameter set of the paper's evaluation (Section 4.1):
``lambda_t = 0``, ``w_l = 0.1``, ``w_t = 0.1``, history/recency window
``t = 4`` and a lookahead depth of one layer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace
from typing import Optional

__all__ = ["MapperConfig"]


@dataclass(frozen=True)
class MapperConfig:
    """Parameters of the hybrid mapping process.

    Attributes
    ----------
    alpha_gate / alpha_shuttling:
        Decision weights ``alpha_g`` and ``alpha_s``.  ``alpha_shuttling = 0``
        gives the gate-only mode (A of Table 1a is shuttling-only, B is
        gate-only, C is the hybrid); ``alpha_gate = 0`` gives shuttling-only.
    lookahead_depth:
        Number of DAG release steps included in the lookahead layer.
    lookahead_weight:
        ``w_l`` — weighting of the lookahead layer in both cost functions.
    decay_rate:
        ``lambda_t`` — recency damping of the gate-based cost function.
    time_weight:
        ``w_t`` — weighting of the AOD-parallelism term of the shuttling cost.
    history_window:
        ``t`` — number of recent operations considered for the recency score
        and the parallelism term.
    use_commutation:
        Whether layer creation may exploit gate commutation rules.
    cross_round_cache:
        Whether the mapper may reuse capability decisions and candidate move
        chains across routing rounds (``repro.mapping.regioncache``), with
        occupancy-region invalidation.  The emitted operation stream is
        bit-identical either way (enforced by the differential harness under
        ``tests/differential/``); ``False`` selects the from-scratch
        reference path the harness compares against.
    chain_kernel:
        Whether chain construction may use the vectorised candidate kernel
        (numpy gathers over the interaction zone with argmin/stable-argsort
        selection) instead of the scalar set loops.  The emitted operation
        stream is bit-identical either way — the kernel replicates the
        scalar tie-break order exactly and euclidean terms stay scalar
        (``math.hypot`` parity, the PR 3 precedent) — and the kernel-on/off
        axis of ``tests/differential/`` enforces it.  Ignored (scalar path)
        when numpy is unavailable.
    stall_threshold:
        Number of consecutive routing operations without executing a gate
        after which the mapper switches to deterministic fallback routing.
        ``None`` derives a threshold from the lattice diameter.
    max_routing_steps:
        Hard safety bound on the total number of routing operations; mapping
        aborts with an error beyond it (should never trigger in practice).
    shard_routing:
        Enable sharded intra-circuit routing (``repro.mapping.shard``): the
        circuit DAG is partitioned into weakly-coupled slices at
        low-crossing frontiers, slices are routed on worker processes
        against snapshotted mapping states, and the seams are stitched by
        re-routing boundary gates against the merged state.  The emitted
        stream is **not** bit-identical to serial routing — the contract is
        *metrics parity* (ΔCZ/Δmove counts within bounds) plus full replay
        validity, enforced by ``tests/differential/test_differential_shard``.
        ``False`` (the default) leaves the serial path byte-identical to the
        committed goldens.
    shard_workers:
        Worker count for sharded routing.  ``1`` selects the *chained*
        scheduler (each slice routes from the true predecessor state —
        deterministic, no speculation, the honest configuration for 1-CPU
        hosts); ``>= 2`` selects the *speculative* scheduler (all slices
        route in parallel from the initial-state snapshot and diverged ops
        are re-routed at the seams).  The operation stream depends only on
        this chained/speculative distinction, never on how many workers
        actually ran, so the fingerprint stays an honest result identity.
    shard_min_slice:
        Minimum gates per slice; circuits with fewer than two minimum-size
        slices silently take the serial path (bit-identical to goldens).
    shard_max_slice:
        Soft upper bound on slice size (``None`` = ``4 * shard_min_slice``);
        a slice may exceed it only when no cut under ``shard_max_cut_qubits``
        exists inside the window.
    shard_max_cut_qubits:
        Hard bound on the number of qubits crossing any slice cut; the
        partitioner extends slices rather than cut above it.  ``None``
        places cuts at the locally minimal crossing without a bound.
    seed_snapshots:
        Whether speculative slice workers start from a *forecast* of their
        slice's entry mapping state (``repro.mapping.shard`` runs a cheap
        placement simulation over the partition plan and seeds each worker
        with the predicted qubit→site maps) instead of the initial-state
        snapshot.  Seeded workers speculate far closer to the truth, so the
        stitch replays more ops and seam rounds shrink to a thin repair
        pass.  A slice whose forecast cannot be realised as a legal state
        falls back to the initial snapshot.  Affects speculative sharded
        streams only (``shard_routing=True`` and ``shard_workers >= 2``);
        the default serial path is untouched.
    hierarchical_partition:
        Whether the partitioner recursively re-cuts oversized slices at
        their own minimum-crossing frontiers
        (``repro.mapping.partition.partition_circuit_tree``), producing a
        slice tree whose every level honours ``shard_max_cut_qubits`` and
        whose leaves stream through the stitcher in deterministic
        left-to-right order.  ``False`` keeps the flat greedy frontier
        sweep.  Affects sharded streams only.
    """

    alpha_gate: float = 1.0
    alpha_shuttling: float = 1.0
    lookahead_depth: int = 1
    lookahead_weight: float = 0.1
    decay_rate: float = 0.0
    time_weight: float = 0.1
    history_window: int = 4
    use_commutation: bool = True
    cross_round_cache: bool = True
    chain_kernel: bool = True
    stall_threshold: Optional[int] = None
    max_routing_steps: Optional[int] = None
    shard_routing: bool = False
    shard_workers: int = 2
    shard_min_slice: int = 24
    shard_max_slice: Optional[int] = None
    shard_max_cut_qubits: Optional[int] = None
    seed_snapshots: bool = True
    hierarchical_partition: bool = True

    def __post_init__(self) -> None:
        # Normalise numeric field types so equal-valued configs are identical
        # objects: MapperConfig(alpha_gate=2) and MapperConfig(alpha_gate=2.0)
        # must produce the same canonical key/fingerprint (repr(2) != repr(2.0)
        # even though the values compare equal).
        for name in ("alpha_gate", "alpha_shuttling", "lookahead_weight",
                     "decay_rate", "time_weight"):
            object.__setattr__(self, name, float(getattr(self, name)))
        for name in ("lookahead_depth", "history_window", "shard_workers",
                     "shard_min_slice"):
            object.__setattr__(self, name, int(getattr(self, name)))
        for name in ("stall_threshold", "max_routing_steps", "shard_max_slice",
                     "shard_max_cut_qubits"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, int(value))
        for name in ("use_commutation", "cross_round_cache", "chain_kernel",
                     "shard_routing", "seed_snapshots", "hierarchical_partition"):
            object.__setattr__(self, name, bool(getattr(self, name)))
        if self.alpha_gate < 0 or self.alpha_shuttling < 0:
            raise ValueError("alpha weights must be non-negative")
        if self.alpha_gate == 0 and self.alpha_shuttling == 0:
            raise ValueError("at least one capability must remain enabled")
        if self.lookahead_depth < 0:
            raise ValueError("lookahead depth cannot be negative")
        if self.lookahead_weight < 0 or self.time_weight < 0 or self.decay_rate < 0:
            raise ValueError("cost weights must be non-negative")
        if self.history_window < 0:
            raise ValueError("history window cannot be negative")
        if self.shard_workers < 1:
            raise ValueError("shard_workers must be at least 1")
        if self.shard_min_slice < 1:
            raise ValueError("shard_min_slice must be at least 1")
        if self.shard_max_slice is not None and \
                self.shard_max_slice < self.shard_min_slice:
            raise ValueError("shard_max_slice cannot be below shard_min_slice")
        if self.shard_max_cut_qubits is not None and self.shard_max_cut_qubits < 0:
            raise ValueError("shard_max_cut_qubits cannot be negative")

    # ------------------------------------------------------------------
    # Mode helpers
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """Human-readable mode name: ``gate_only``, ``shuttling_only`` or ``hybrid``."""
        if self.alpha_shuttling == 0:
            return "gate_only"
        if self.alpha_gate == 0:
            return "shuttling_only"
        return "hybrid"

    @property
    def alpha_ratio(self) -> float:
        """The decision ratio ``alpha = alpha_g / alpha_s`` (``inf`` for gate-only)."""
        if self.alpha_shuttling == 0:
            return float("inf")
        return self.alpha_gate / self.alpha_shuttling

    @classmethod
    def gate_only(cls, **kwargs) -> "MapperConfig":
        """Configuration for pure SWAP-insertion mapping (mode (B))."""
        return cls(alpha_gate=1.0, alpha_shuttling=0.0, **kwargs)

    @classmethod
    def shuttling_only(cls, **kwargs) -> "MapperConfig":
        """Configuration for pure shuttling mapping (mode (A))."""
        return cls(alpha_gate=0.0, alpha_shuttling=1.0, **kwargs)

    @classmethod
    def hybrid(cls, alpha_ratio: float = 1.0, **kwargs) -> "MapperConfig":
        """Hybrid configuration with the given decision ratio ``alpha_g / alpha_s``."""
        if alpha_ratio <= 0:
            raise ValueError("alpha ratio must be positive for hybrid mapping")
        return cls(alpha_gate=alpha_ratio, alpha_shuttling=1.0, **kwargs)

    @classmethod
    def for_mode(cls, mode: str, alpha_ratio: float = 1.0, **kwargs) -> "MapperConfig":
        """Configuration for a named mode (``alpha_ratio`` applies to hybrid only)."""
        if mode == "shuttling_only":
            return cls.shuttling_only(**kwargs)
        if mode == "gate_only":
            return cls.gate_only(**kwargs)
        if mode == "hybrid":
            return cls.hybrid(alpha_ratio, **kwargs)
        raise ValueError(f"unknown mapper mode {mode!r}; choose from "
                         "('shuttling_only', 'gate_only', 'hybrid')")

    @classmethod
    def sharded(cls, workers: int = 2, **kwargs) -> "MapperConfig":
        """Hybrid configuration with sharded intra-circuit routing enabled."""
        return cls(shard_routing=True, shard_workers=workers, **kwargs)

    def with_overrides(self, **kwargs) -> "MapperConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    @property
    def resolved_shard_max_slice(self) -> int:
        """Soft slice-size ceiling (``shard_max_slice`` or 4x the minimum)."""
        if self.shard_max_slice is not None:
            return self.shard_max_slice
        return 4 * self.shard_min_slice

    # ------------------------------------------------------------------
    # Persistent identity
    # ------------------------------------------------------------------
    def canonical_key(self) -> str:
        """Canonical ``field=value`` serialisation of every config field.

        Fields are enumerated from the dataclass definition and sorted by
        name, so the key depends on neither declaration order, dict order
        nor object identity — two configs built from equal kwargs in any
        process produce the identical string (regression-tested across a
        subprocess boundary in ``tests/store/test_keys.py``).
        """
        parts = [f"{spec.name}={getattr(self, spec.name)!r}"
                 for spec in sorted(fields(self), key=lambda spec: spec.name)]
        # v2: the sharding knobs (shard_routing/shard_workers/shard_min_slice/
        # shard_max_slice/shard_max_cut_qubits) joined the field set, so every
        # fingerprint shifted; the schema tag makes the break explicit (and
        # repro 1.3.0 rides along so store keys of both components move
        # together — see repro/_version.py).
        # v3: chain_kernel joined the field set.  Fingerprints shift (cached
        # store entries recompile once) but op streams do not — the kernel is
        # bit-identical by contract, so repro._version and the goldens stay.
        # v4: seed_snapshots / hierarchical_partition joined the field set.
        # They only shape *sharded* streams (metrics-parity contract);
        # shard_routing=False output is unchanged, so again only the schema
        # tag moves — repro._version and the goldens stay.
        return "mapper-config/v4|" + "|".join(parts)

    def fingerprint(self) -> str:
        """SHA-256 of :meth:`canonical_key` — the config component of
        persistent store keys (:mod:`repro.store`)."""
        return hashlib.sha256(self.canonical_key().encode()).hexdigest()
