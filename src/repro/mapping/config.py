"""Mapper configuration.

Collects every tunable of the hybrid mapping process in one place.  The
defaults reproduce the parameter set of the paper's evaluation (Section 4.1):
``lambda_t = 0``, ``w_l = 0.1``, ``w_t = 0.1``, history/recency window
``t = 4`` and a lookahead depth of one layer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, replace
from typing import Optional

__all__ = ["MapperConfig"]


@dataclass(frozen=True)
class MapperConfig:
    """Parameters of the hybrid mapping process.

    Attributes
    ----------
    alpha_gate / alpha_shuttling:
        Decision weights ``alpha_g`` and ``alpha_s``.  ``alpha_shuttling = 0``
        gives the gate-only mode (A of Table 1a is shuttling-only, B is
        gate-only, C is the hybrid); ``alpha_gate = 0`` gives shuttling-only.
    lookahead_depth:
        Number of DAG release steps included in the lookahead layer.
    lookahead_weight:
        ``w_l`` — weighting of the lookahead layer in both cost functions.
    decay_rate:
        ``lambda_t`` — recency damping of the gate-based cost function.
    time_weight:
        ``w_t`` — weighting of the AOD-parallelism term of the shuttling cost.
    history_window:
        ``t`` — number of recent operations considered for the recency score
        and the parallelism term.
    use_commutation:
        Whether layer creation may exploit gate commutation rules.
    cross_round_cache:
        Whether the mapper may reuse capability decisions and candidate move
        chains across routing rounds (``repro.mapping.regioncache``), with
        occupancy-region invalidation.  The emitted operation stream is
        bit-identical either way (enforced by the differential harness under
        ``tests/differential/``); ``False`` selects the from-scratch
        reference path the harness compares against.
    stall_threshold:
        Number of consecutive routing operations without executing a gate
        after which the mapper switches to deterministic fallback routing.
        ``None`` derives a threshold from the lattice diameter.
    max_routing_steps:
        Hard safety bound on the total number of routing operations; mapping
        aborts with an error beyond it (should never trigger in practice).
    """

    alpha_gate: float = 1.0
    alpha_shuttling: float = 1.0
    lookahead_depth: int = 1
    lookahead_weight: float = 0.1
    decay_rate: float = 0.0
    time_weight: float = 0.1
    history_window: int = 4
    use_commutation: bool = True
    cross_round_cache: bool = True
    stall_threshold: Optional[int] = None
    max_routing_steps: Optional[int] = None

    def __post_init__(self) -> None:
        # Normalise numeric field types so equal-valued configs are identical
        # objects: MapperConfig(alpha_gate=2) and MapperConfig(alpha_gate=2.0)
        # must produce the same canonical key/fingerprint (repr(2) != repr(2.0)
        # even though the values compare equal).
        for name in ("alpha_gate", "alpha_shuttling", "lookahead_weight",
                     "decay_rate", "time_weight"):
            object.__setattr__(self, name, float(getattr(self, name)))
        for name in ("lookahead_depth", "history_window"):
            object.__setattr__(self, name, int(getattr(self, name)))
        for name in ("stall_threshold", "max_routing_steps"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, int(value))
        for name in ("use_commutation", "cross_round_cache"):
            object.__setattr__(self, name, bool(getattr(self, name)))
        if self.alpha_gate < 0 or self.alpha_shuttling < 0:
            raise ValueError("alpha weights must be non-negative")
        if self.alpha_gate == 0 and self.alpha_shuttling == 0:
            raise ValueError("at least one capability must remain enabled")
        if self.lookahead_depth < 0:
            raise ValueError("lookahead depth cannot be negative")
        if self.lookahead_weight < 0 or self.time_weight < 0 or self.decay_rate < 0:
            raise ValueError("cost weights must be non-negative")
        if self.history_window < 0:
            raise ValueError("history window cannot be negative")

    # ------------------------------------------------------------------
    # Mode helpers
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """Human-readable mode name: ``gate_only``, ``shuttling_only`` or ``hybrid``."""
        if self.alpha_shuttling == 0:
            return "gate_only"
        if self.alpha_gate == 0:
            return "shuttling_only"
        return "hybrid"

    @property
    def alpha_ratio(self) -> float:
        """The decision ratio ``alpha = alpha_g / alpha_s`` (``inf`` for gate-only)."""
        if self.alpha_shuttling == 0:
            return float("inf")
        return self.alpha_gate / self.alpha_shuttling

    @classmethod
    def gate_only(cls, **kwargs) -> "MapperConfig":
        """Configuration for pure SWAP-insertion mapping (mode (B))."""
        return cls(alpha_gate=1.0, alpha_shuttling=0.0, **kwargs)

    @classmethod
    def shuttling_only(cls, **kwargs) -> "MapperConfig":
        """Configuration for pure shuttling mapping (mode (A))."""
        return cls(alpha_gate=0.0, alpha_shuttling=1.0, **kwargs)

    @classmethod
    def hybrid(cls, alpha_ratio: float = 1.0, **kwargs) -> "MapperConfig":
        """Hybrid configuration with the given decision ratio ``alpha_g / alpha_s``."""
        if alpha_ratio <= 0:
            raise ValueError("alpha ratio must be positive for hybrid mapping")
        return cls(alpha_gate=alpha_ratio, alpha_shuttling=1.0, **kwargs)

    @classmethod
    def for_mode(cls, mode: str, alpha_ratio: float = 1.0, **kwargs) -> "MapperConfig":
        """Configuration for a named mode (``alpha_ratio`` applies to hybrid only)."""
        if mode == "shuttling_only":
            return cls.shuttling_only(**kwargs)
        if mode == "gate_only":
            return cls.gate_only(**kwargs)
        if mode == "hybrid":
            return cls.hybrid(alpha_ratio, **kwargs)
        raise ValueError(f"unknown mapper mode {mode!r}; choose from "
                         "('shuttling_only', 'gate_only', 'hybrid')")

    def with_overrides(self, **kwargs) -> "MapperConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Persistent identity
    # ------------------------------------------------------------------
    def canonical_key(self) -> str:
        """Canonical ``field=value`` serialisation of every config field.

        Fields are enumerated from the dataclass definition and sorted by
        name, so the key depends on neither declaration order, dict order
        nor object identity — two configs built from equal kwargs in any
        process produce the identical string (regression-tested across a
        subprocess boundary in ``tests/store/test_keys.py``).
        """
        parts = [f"{spec.name}={getattr(self, spec.name)!r}"
                 for spec in sorted(fields(self), key=lambda spec: spec.name)]
        return "mapper-config/v1|" + "|".join(parts)

    def fingerprint(self) -> str:
        """SHA-256 of :meth:`canonical_key` — the config component of
        persistent store keys (:mod:`repro.store`)."""
        return hashlib.sha256(self.canonical_key().encode()).hexdigest()
