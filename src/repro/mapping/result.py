"""Mapping output representation.

The hybrid mapper emits an ordered stream of :class:`MappedOperation` items:
the original circuit gates (now guaranteed executable at their emission
point), the inserted SWAP gates, and the shuttling moves.  The stream is what
the scheduler consumes (process block (5)) and what the evaluation counts
``ΔCZ`` and ``ΔT`` from.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.decompose import decompose_swaps_to_cz
from ..circuit.gate import Gate, GateKind, swap_gate
from ..shuttling.moves import Move

__all__ = ["MappedOperation", "CircuitGateOp", "SwapOp", "ShuttleOp", "MappingResult"]


@dataclass(frozen=True)
class MappedOperation:
    """Base class for entries of the mapped operation stream."""


@dataclass(frozen=True)
class CircuitGateOp(MappedOperation):
    """An original circuit gate, executed at the recorded sites.

    ``gate`` keeps the *circuit* qubit indices; ``atoms`` and ``sites`` record
    which physical atoms executed it and where they sat at execution time.
    """

    gate: Gate
    gate_index: int
    atoms: Tuple[int, ...]
    sites: Tuple[int, ...]


@dataclass(frozen=True)
class SwapOp(MappedOperation):
    """A SWAP gate inserted by the gate-based router."""

    qubit_a: int
    qubit_b: int
    atom_a: int
    atom_b: int
    site_a: int
    site_b: int


@dataclass(frozen=True)
class ShuttleOp(MappedOperation):
    """A shuttling move emitted by the shuttling-based router."""

    move: Move


@dataclass
class MappingResult:
    """Complete result of a mapping run.

    Attributes
    ----------
    circuit:
        The input circuit that was mapped.
    operations:
        Ordered stream of mapped operations.
    num_swaps / num_moves:
        Count of inserted SWAP gates and shuttling moves.
    num_gate_routed / num_shuttle_routed:
        How many entangling circuit gates were enabled by each capability
        (gates that were executable without any routing are counted under
        ``num_trivially_executable``).
    runtime_seconds:
        Wall-clock time of the mapping process (the RT column of Table 1a).
    stage_seconds:
        Wall-clock time per mapping stage (``execute``, ``decide``,
        ``gate_route``, ``shuttle_route``), accumulated over all routing
        rounds.  Consumed by the perf harness (``benchmarks/perf_report.py``)
        to track where mapping time goes as the system scales.
    initial_qubit_map / final_qubit_map:
        The qubit mapping before and after the run.
    initial_atom_map / final_atom_map:
        The atom mapping before and after the run.
    shard_stats:
        Sharded-routing bookkeeping (:mod:`repro.mapping.shard`): scheduler
        kind, slice sizes, replay/defer counts, seam rounds, slice failures.
        Speculative runs additionally record the seeding and memory
        telemetry — ``seeded_slices`` / ``seeded_fallbacks`` (how many
        workers started from a forecast entry map vs the initial snapshot),
        ``seeded_hit_ratio`` (fraction of speculative circuit gates that
        replayed without deferral:
        ``gates_replayed / (gates_replayed + gates_deferred)``),
        ``seam_gate_ratio`` (``seam_gates`` over the circuit's non-barrier
        gate count — the "how much fell back to serial repair" headline),
        ``tree_depth`` (height of the hierarchical partition tree; 1 for a
        flat plan) and ``max_live_results`` (high-water mark of slice
        results held concurrently by the streaming stitcher).  Empty for
        serial runs.
    """

    circuit: QuantumCircuit
    operations: List[MappedOperation] = field(default_factory=list)
    num_swaps: int = 0
    num_moves: int = 0
    num_gate_routed: int = 0
    num_shuttle_routed: int = 0
    num_trivially_executable: int = 0
    num_fallback_reroutes: int = 0
    runtime_seconds: float = 0.0
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    initial_qubit_map: Dict[int, int] = field(default_factory=dict)
    final_qubit_map: Dict[int, int] = field(default_factory=dict)
    initial_atom_map: Dict[int, int] = field(default_factory=dict)
    final_atom_map: Dict[int, int] = field(default_factory=dict)
    mode: str = "hybrid"
    shard_stats: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------
    def append(self, operation: MappedOperation) -> None:
        self.operations.append(operation)
        if isinstance(operation, SwapOp):
            self.num_swaps += 1
        elif isinstance(operation, ShuttleOp):
            self.num_moves += 1

    def circuit_gate_ops(self) -> List[CircuitGateOp]:
        return [op for op in self.operations if isinstance(op, CircuitGateOp)]

    def swap_ops(self) -> List[SwapOp]:
        return [op for op in self.operations if isinstance(op, SwapOp)]

    def shuttle_ops(self) -> List[ShuttleOp]:
        return [op for op in self.operations if isinstance(op, ShuttleOp)]

    def moves(self) -> List[Move]:
        return [op.move for op in self.shuttle_ops()]

    def total_move_distance(self) -> float:
        """Sum of the rectangular travel distances of all moves (micrometres)."""
        return sum(move.rectangular_distance for move in self.moves())

    # ------------------------------------------------------------------
    # Derived circuits and counts
    # ------------------------------------------------------------------
    def additional_cz_count(self) -> int:
        """Number of native CZ gates contributed by the inserted SWAPs.

        Each SWAP decomposes into three CZ gates (Section 2.2); this is the
        quantity reported as ``ΔCZ`` in Table 1a.
        """
        return 3 * self.num_swaps

    def to_physical_circuit(self, *, decompose_swaps: bool = False) -> QuantumCircuit:
        """Rebuild the mapped circuit over *atom* indices.

        Circuit gates are re-indexed to the atoms that executed them, and the
        inserted SWAPs appear explicitly (optionally decomposed into the
        native CZ + H sequence).  Shuttling moves have no circuit
        representation and are omitted — they only matter for scheduling.
        """
        num_atoms = max(
            [self.circuit.num_qubits]
            + [max(op.atoms) + 1 for op in self.circuit_gate_ops() if op.atoms]
            + [max(op.atom_a, op.atom_b) + 1 for op in self.swap_ops()]
        )
        physical = QuantumCircuit(num_atoms, name=f"{self.circuit.name}_mapped")
        for op in self.operations:
            if isinstance(op, CircuitGateOp):
                mapping = dict(zip(op.gate.qubits, op.atoms))
                physical.append(op.gate.remapped(mapping))
            elif isinstance(op, SwapOp):
                physical.append(swap_gate(op.atom_a, op.atom_b))
        if decompose_swaps:
            physical = decompose_swaps_to_cz(physical)
        return physical

    def verify_complete(self) -> None:
        """Raise if not every circuit gate appears exactly once in the stream.

        Barriers carry no operation and are exempt.
        """
        expected = [index for index, gate in enumerate(self.circuit)
                    if gate.kind != GateKind.BARRIER]
        emitted = sorted(op.gate_index for op in self.circuit_gate_ops())
        if emitted != sorted(expected):
            missing = sorted(set(expected) - set(emitted))
            duplicated = sorted({i for i in emitted if emitted.count(i) > 1})
            raise AssertionError(
                f"mapped stream incomplete: missing gates {missing[:10]}, "
                f"duplicated gates {duplicated[:10]}")

    def op_stream_lines(self) -> List[str]:
        """Canonical text serialisation of the operation stream.

        One line per operation, covering every field that identifies it
        (gate kind/qubits/params, atoms, sites, move endpoints), so two
        results serialise identically iff their op streams are identical.
        Used by the differential harness and the golden digest tests.
        """
        lines: List[str] = []
        for op in self.operations:
            if isinstance(op, CircuitGateOp):
                gate = op.gate
                params = ",".join(repr(p) for p in gate.params)
                lines.append(
                    f"G {op.gate_index} {gate.name}/{gate.kind} q={gate.qubits} "
                    f"p=[{params}] a={op.atoms} s={op.sites}")
            elif isinstance(op, SwapOp):
                lines.append(
                    f"S q=({op.qubit_a},{op.qubit_b}) a=({op.atom_a},{op.atom_b}) "
                    f"s=({op.site_a},{op.site_b})")
            elif isinstance(op, ShuttleOp):
                move = op.move
                lines.append(
                    f"M a={move.atom} {move.source}->{move.destination} "
                    f"away={int(move.is_move_away)}")
            else:  # pragma: no cover - no other op kinds exist
                lines.append(repr(op))
        return lines

    def op_stream_digest(self) -> Dict[str, object]:
        """Compact digest of the op stream: SHA-256 plus headline counts.

        Committed under ``tests/golden/`` so any routing change that shifts
        the emitted stream fails loudly instead of silently.
        """
        payload = "\n".join(self.op_stream_lines()).encode()
        return {
            "sha256": hashlib.sha256(payload).hexdigest(),
            "num_operations": len(self.operations),
            "num_gates": len(self.circuit_gate_ops()),
            "num_swaps": self.num_swaps,
            "num_moves": self.num_moves,
        }

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of the headline statistics (for reports)."""
        return {
            "circuit": self.circuit.name,
            "mode": self.mode,
            "num_gates": len(self.circuit),
            "num_swaps": self.num_swaps,
            "num_moves": self.num_moves,
            "additional_cz": self.additional_cz_count(),
            "gate_routed": self.num_gate_routed,
            "shuttle_routed": self.num_shuttle_routed,
            "trivially_executable": self.num_trivially_executable,
            "runtime_seconds": self.runtime_seconds,
        }
