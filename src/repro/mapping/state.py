"""Mapping state: the two-fold assignment of circuit qubits to atoms to sites.

Section 2.2 of the paper defines the mapping problem on neutral atoms as
two-fold:

* the **qubit mapping** ``f_q`` assigns circuit qubits ``q_i`` to physical
  qubits (atoms) ``Q_a``; SWAP gates modify this assignment,
* the **atom mapping** ``f_a`` assigns atoms to trap coordinates ``C_alpha``;
  shuttling moves modify this assignment.

:class:`MappingState` maintains both maps plus the inverse lookups, exposes
the derived connectivity queries (which gates are executable, how far apart
two logical qubits currently are), and applies SWAPs and moves while keeping
everything consistent.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - numpy-less fallback environments
    _np = None

from ..circuit.gate import Gate
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from ..shuttling.moves import Move

__all__ = ["MappingState"]

_UNOCCUPIED = -1
_UNASSIGNED = -1

#: Maximum number of sites kept in the occupancy-change journal (two per
#: move).  Once exceeded, the older half is dropped and
#: :meth:`MappingState.changed_sites_since` answers ``None`` for epochs
#: before the truncation point (callers fall back to a full validation).
_JOURNAL_LIMIT = 1024


class MappingState:
    """Mutable mapping state over a fixed architecture.

    Parameters
    ----------
    architecture:
        Target device.
    num_circuit_qubits:
        Number of circuit qubits ``n``; must not exceed the number of atoms.
    connectivity:
        Optional pre-built :class:`SiteConnectivity` (shared between runs to
        avoid recomputing the geometric neighbourhoods).
    initial_sites:
        Optional explicit atom placement: ``initial_sites[a]`` is the trap
        site of atom ``a``.  Defaults to the identity placement
        ``Q_a -> C_a`` used in the paper's evaluation.
    initial_qubit_map:
        Optional explicit qubit mapping: ``initial_qubit_map[q]`` is the atom
        holding circuit qubit ``q``.  Defaults to the identity ``q_i -> Q_i``.
    """

    def __init__(self, architecture: NeutralAtomArchitecture, num_circuit_qubits: int,
                 connectivity: Optional[SiteConnectivity] = None,
                 initial_sites: Optional[Sequence[int]] = None,
                 initial_qubit_map: Optional[Sequence[int]] = None) -> None:
        if num_circuit_qubits <= 0:
            raise ValueError("need at least one circuit qubit")
        if num_circuit_qubits > architecture.num_atoms:
            raise ValueError(
                f"{num_circuit_qubits} circuit qubits exceed the {architecture.num_atoms} "
                "available atoms")
        self.architecture = architecture
        self.connectivity = connectivity or SiteConnectivity(architecture)
        self.num_circuit_qubits = num_circuit_qubits
        self.num_atoms = architecture.num_atoms
        self.num_sites = architecture.topology.num_sites

        # Atom mapping f_a: atom -> site, and the inverse site -> atom.
        if initial_sites is None:
            initial_sites = list(range(self.num_atoms))
        initial_sites = list(initial_sites)
        if len(initial_sites) != self.num_atoms:
            raise ValueError("initial_sites must assign every atom a site")
        if len(set(initial_sites)) != len(initial_sites):
            raise ValueError("two atoms cannot share a trap site")
        for site in initial_sites:
            if not 0 <= site < self.num_sites:
                raise ValueError(f"site {site} outside the lattice")
        self._atom_to_site: List[int] = initial_sites
        self._site_to_atom: List[int] = [_UNOCCUPIED] * self.num_sites
        for atom, site in enumerate(initial_sites):
            self._site_to_atom[site] = atom

        # Occupancy sets maintained incrementally by move_atom (SWAPs do not
        # change occupancy).  Exposed as live read-only views so the routing
        # loops never pay an O(num_sites) rebuild.
        self._occupied: Set[int] = set(initial_sites)
        self._free: Set[int] = {site for site in range(self.num_sites)
                                if site not in self._occupied}

        # Occupancy-region invalidation support for the cross-round caches
        # (:mod:`repro.mapping.regioncache`).  ``_occupancy_epoch`` counts
        # occupancy mutations (moves; SWAPs leave occupancy untouched) and
        # ``_neigh_stamp[s]`` is the epoch of the last mutation anywhere in
        # the closed interaction neighbourhood of ``s``, so "is the
        # neighbourhood of this site untouched since epoch e" is an O(1)
        # stamp read.
        self._occupancy_epoch = 0
        self._neigh_stamp: List[int] = [0] * self.num_sites

        # Occupancy-change journal: two site indices appended per move
        # (source, destination), with ``_journal_floor`` the epoch at which
        # the journal starts.  Lets region caches ask "which sites changed
        # since epoch e" in O(changes) instead of O(region); bounded by
        # truncating the older half past ``_JOURNAL_LIMIT``.
        self._journal: List[int] = []
        self._journal_floor = 0

        # Vectorised free-site mask (1 = free), maintained alongside the
        # incremental sets when numpy is available.  Used by the chain
        # kernel for batched free/occupied gathers.
        if _np is not None:
            self._free_mask = _np.ones(self.num_sites, dtype=_np.uint8)
            self._free_mask[initial_sites] = 0
        else:
            self._free_mask = None

        # Qubit mapping f_q: circuit qubit -> atom, and the inverse.
        if initial_qubit_map is None:
            initial_qubit_map = list(range(num_circuit_qubits))
        initial_qubit_map = list(initial_qubit_map)
        if len(initial_qubit_map) != num_circuit_qubits:
            raise ValueError("initial_qubit_map must assign every circuit qubit an atom")
        if len(set(initial_qubit_map)) != len(initial_qubit_map):
            raise ValueError("two circuit qubits cannot share an atom")
        for atom in initial_qubit_map:
            if not 0 <= atom < self.num_atoms:
                raise ValueError(f"atom {atom} does not exist")
        self._qubit_to_atom: List[int] = initial_qubit_map
        self._atom_to_qubit: List[int] = [_UNASSIGNED] * self.num_atoms
        for qubit, atom in enumerate(initial_qubit_map):
            self._atom_to_qubit[atom] = qubit

        # Bookkeeping of applied mapping operations.
        self.num_swaps_applied = 0
        self.num_moves_applied = 0

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def atom_of_qubit(self, qubit: int) -> int:
        """Physical atom currently holding circuit qubit ``qubit``."""
        return self._qubit_to_atom[qubit]

    def qubit_of_atom(self, atom: int) -> Optional[int]:
        """Circuit qubit held by ``atom``, or ``None`` for an auxiliary atom."""
        qubit = self._atom_to_qubit[atom]
        return None if qubit == _UNASSIGNED else qubit

    def site_of_atom(self, atom: int) -> int:
        """Trap site of ``atom``."""
        return self._atom_to_site[atom]

    def site_of_qubit(self, qubit: int) -> int:
        """Trap site of the atom holding circuit qubit ``qubit``."""
        return self._atom_to_site[self._qubit_to_atom[qubit]]

    def atom_at_site(self, site: int) -> Optional[int]:
        """Atom stored at ``site``, or ``None`` if the trap is empty."""
        atom = self._site_to_atom[site]
        return None if atom == _UNOCCUPIED else atom

    def site_is_free(self, site: int) -> bool:
        return self._site_to_atom[site] == _UNOCCUPIED

    def occupied_sites(self) -> Set[int]:
        """Set of all sites currently holding an atom.

        Maintained incrementally (O(1) per move) and returned as a live
        view: callers must not mutate it.  Derive modified sets with set
        operators (``occupied - protected``), which copy.
        """
        return self._occupied

    def free_sites(self) -> Set[int]:
        """Set of all empty trap sites (live read-only view, see above)."""
        return self._free

    # ------------------------------------------------------------------
    # Occupancy-region invalidation (cross-round caches)
    # ------------------------------------------------------------------
    @property
    def occupancy_epoch(self) -> int:
        """Monotonic counter of occupancy mutations (one tick per move)."""
        return self._occupancy_epoch

    @property
    def free_mask(self):
        """Vectorised free-site mask (uint8, 1 = free), or ``None`` without numpy.

        Maintained incrementally by :meth:`move_atom`; callers must treat it
        as read-only.
        """
        return self._free_mask

    def changed_sites_since(self, epoch: int) -> Optional[List[int]]:
        """Sites whose occupancy changed after ``epoch`` (may repeat), oldest first.

        Returns ``None`` when the journal has been truncated past ``epoch``
        (callers must fall back to a full validation).  An up-to-date epoch
        yields the empty list.
        """
        if epoch < self._journal_floor:
            return None
        start = (epoch - self._journal_floor) * 2
        return self._journal[start:]

    def region_untouched_since(self, region, epoch: int,
                               scan_limit: int = 64) -> Optional[bool]:
        """Whether no site of ``region`` changed occupancy after ``epoch``.

        Scans the change journal in place (no slice copy): ``True`` /
        ``False`` when the journal covers ``epoch`` and the answer is
        decided within ``scan_limit`` membership probes, ``None`` when the
        journal was truncated past ``epoch`` or the scan would exceed the
        limit — callers fall back to a full value validation, so the check
        is O(recent changes) with a hard ceiling.
        """
        if epoch < self._journal_floor:
            return None
        journal = self._journal
        start = (epoch - self._journal_floor) * 2
        end = len(journal)
        if end - start > scan_limit:
            return None
        for index in range(start, end):
            if journal[index] in region:
                return False
        return True

    def neighbourhoods_unchanged_since(self, sites: Iterable[int], epoch: int) -> bool:
        """True if the closed interaction neighbourhood of every given site is
        occupancy-unchanged since ``epoch``.

        Backed by the per-site neighbourhood stamps, so the check is O(1) per
        site instead of O(coordination number).
        """
        stamps = self._neigh_stamp
        return all(stamps[site] <= epoch for site in sites)

    def qubit_mapping(self) -> Dict[int, int]:
        """Copy of the qubit mapping ``f_q`` (circuit qubit -> atom)."""
        return {qubit: atom for qubit, atom in enumerate(self._qubit_to_atom)}

    def atom_mapping(self) -> Dict[int, int]:
        """Copy of the atom mapping ``f_a`` (atom -> site)."""
        return {atom: site for atom, site in enumerate(self._atom_to_site)}

    def gate_sites(self, gate: Gate) -> Tuple[int, ...]:
        """Trap sites of the gate's qubits in gate-qubit order."""
        return tuple(self.site_of_qubit(q) for q in gate.qubits)

    # ------------------------------------------------------------------
    # Connectivity-derived queries
    # ------------------------------------------------------------------
    def qubits_adjacent(self, qubit_a: int, qubit_b: int) -> bool:
        """True if the two circuit qubits are within the interaction radius."""
        return self.connectivity.are_adjacent(self.site_of_qubit(qubit_a),
                                              self.site_of_qubit(qubit_b))

    def gate_executable(self, gate: Gate) -> bool:
        """True if every pair of gate qubits lies within the interaction radius.

        Non-entangling gates are always executable.
        """
        if not gate.is_entangling:
            return True
        qubits = gate.qubits
        if len(qubits) == 2:
            # Two-qubit fast path: one O(1) adjacency probe.
            site_a = self._atom_to_site[self._qubit_to_atom[qubits[0]]]
            site_b = self._atom_to_site[self._qubit_to_atom[qubits[1]]]
            return site_a != site_b and self.connectivity.are_adjacent(site_a, site_b)
        return self.connectivity.sites_mutually_interacting(self.gate_sites(gate))

    def vicinity_of_qubit(self, qubit: int) -> List[int]:
        """Occupied sites within the interaction radius of ``qubit``'s site."""
        site = self.site_of_qubit(qubit)
        return [s for s in self.connectivity.interaction_neighbours(site)
                if not self.site_is_free(s)]

    def free_sites_near(self, site: int) -> List[int]:
        """Free sites within the interaction radius of ``site``."""
        return [s for s in self.connectivity.interaction_neighbours(site)
                if self.site_is_free(s)]

    def num_free_sites_near(self, site: int) -> int:
        """Number of free sites within the interaction radius of ``site``.

        One C-level set intersection against the incremental free-site set —
        equal to ``len(free_sites_near(site))`` without building the list.
        """
        return len(self.connectivity.interaction_set(site) & self._free)

    def swap_distance(self, qubit_a: int, qubit_b: int, *, exact: bool = False) -> int:
        """Estimated number of SWAPs needed to make two qubits adjacent.

        The estimate is the hop distance between their sites on the site
        graph minus one (zero if already adjacent).  With ``exact=True`` the
        BFS is restricted to *occupied* sites, which is the true SWAP
        distance but costs one BFS per call.
        """
        site_a = self.site_of_qubit(qubit_a)
        site_b = self.site_of_qubit(qubit_b)
        if site_a == site_b:
            return 0
        if self.connectivity.are_adjacent(site_a, site_b):
            return 0
        if exact:
            occupied = self.occupied_sites()
            distances = self.connectivity.bfs_distances_from(site_a, allowed=occupied)
            hops = distances.get(site_b, self.num_sites)
        else:
            hops = self.connectivity.hop_distance(site_a, site_b)
        return max(hops - 1, 0)

    def gate_swap_distance(self, gate: Gate) -> int:
        """Summed pairwise SWAP-distance estimate of a gate's qubits."""
        qubits = gate.qubits
        total = 0
        for i, qubit_a in enumerate(qubits):
            for qubit_b in qubits[i + 1:]:
                total += self.swap_distance(qubit_a, qubit_b)
        return total

    def connectivity_graph(self):
        """The atom-level connectivity graph ``G`` induced by the occupancy."""
        return self.connectivity.occupied_subgraph(self.occupied_sites())

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def apply_swap(self, qubit_a: int, qubit_b: int) -> None:
        """Exchange the logical assignment of two circuit qubits' atoms.

        Both atoms stay in their traps; only ``f_q`` changes.  The atoms must
        be within the interaction radius for the SWAP gate to be executable.
        """
        atom_a = self._qubit_to_atom[qubit_a]
        atom_b = self._qubit_to_atom[qubit_b]
        if not self.connectivity.are_adjacent(self._atom_to_site[atom_a],
                                              self._atom_to_site[atom_b]):
            raise ValueError(
                f"cannot SWAP qubits {qubit_a} and {qubit_b}: their atoms are not "
                "within the interaction radius")
        self._swap_atoms(atom_a, atom_b)

    def apply_swap_with_atom(self, qubit: int, other_atom: int) -> None:
        """SWAP a circuit qubit with an arbitrary atom (possibly auxiliary).

        When the partner atom holds no circuit qubit the SWAP simply re-homes
        the logical qubit onto the auxiliary atom; physically this is still
        three CZ pulses, so callers account for it like any other SWAP.
        """
        atom = self._qubit_to_atom[qubit]
        if not self.connectivity.are_adjacent(self._atom_to_site[atom],
                                              self._atom_to_site[other_atom]):
            raise ValueError("cannot SWAP: atoms are not within the interaction radius")
        self._swap_atoms(atom, other_atom)

    def _swap_atoms(self, atom_a: int, atom_b: int) -> None:
        qubit_a = self._atom_to_qubit[atom_a]
        qubit_b = self._atom_to_qubit[atom_b]
        self._atom_to_qubit[atom_a], self._atom_to_qubit[atom_b] = qubit_b, qubit_a
        if qubit_a != _UNASSIGNED:
            self._qubit_to_atom[qubit_a] = atom_b
        if qubit_b != _UNASSIGNED:
            self._qubit_to_atom[qubit_b] = atom_a
        self.num_swaps_applied += 1

    def apply_move(self, move: Move) -> None:
        """Relocate an atom according to ``move`` (changes ``f_a`` only)."""
        self.move_atom(move.atom, move.destination)

    def move_atom(self, atom: int, destination: int) -> None:
        """Relocate ``atom`` to the free trap ``destination``."""
        if not 0 <= destination < self.num_sites:
            raise ValueError(f"site {destination} outside the lattice")
        if not self.site_is_free(destination):
            raise ValueError(f"site {destination} is already occupied")
        source = self._atom_to_site[atom]
        if source == destination:
            raise ValueError("move must change the trap site")
        self._site_to_atom[source] = _UNOCCUPIED
        self._site_to_atom[destination] = atom
        self._atom_to_site[atom] = destination
        self._occupied.discard(source)
        self._occupied.add(destination)
        self._free.discard(destination)
        self._free.add(source)
        if self._free_mask is not None:
            self._free_mask[source] = 1
            self._free_mask[destination] = 0
        journal = self._journal
        journal.append(source)
        journal.append(destination)
        if len(journal) > _JOURNAL_LIMIT:
            drop = len(journal) // 2
            drop -= drop % 2
            del journal[:drop]
            self._journal_floor += drop // 2
        self.num_moves_applied += 1
        # Stamp every site whose interaction neighbourhood the mutation
        # belongs to (adjacency is symmetric), so region caches can
        # invalidate with O(1) stamp reads.
        self._occupancy_epoch += 1
        epoch = self._occupancy_epoch
        neigh_stamp = self._neigh_stamp
        for changed in (source, destination):
            neigh_stamp[changed] = epoch
            for neighbour in self.connectivity.interaction_neighbours(changed):
                neigh_stamp[neighbour] = epoch

    def make_move(self, atom: int, destination: int, *, is_move_away: bool = False) -> Move:
        """Construct (but do not apply) a :class:`Move` for ``atom`` to ``destination``."""
        topology = self.architecture.topology
        source = self._atom_to_site[atom]
        travel = (topology.rectangular_row(source)[destination]
                  if topology.has_travel_penalties else None)
        return Move(
            atom=atom,
            source=source,
            destination=destination,
            source_position=topology.position(source),
            destination_position=topology.position(destination),
            is_move_away=is_move_away,
            travel_distance_um=travel,
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def export_maps(self) -> Tuple[List[int], List[int]]:
        """Snapshot of ``(atom_to_site, qubit_to_atom)`` as plain lists.

        The wire format of forecast entry maps in sharded routing
        (:mod:`repro.mapping.shard`): cheap to copy across a fork boundary
        and accepted verbatim by :meth:`from_maps`.
        """
        return list(self._atom_to_site), list(self._qubit_to_atom)

    @classmethod
    def from_maps(cls, architecture: NeutralAtomArchitecture,
                  maps: Tuple[Sequence[int], Sequence[int]],
                  connectivity: Optional[SiteConnectivity] = None
                  ) -> "MappingState":
        """Rebuild a state from an :meth:`export_maps` snapshot.

        The constructor validates the maps (site bounds, no shared traps,
        no shared atoms), so an infeasible forecast raises ``ValueError`` —
        the signal on which a speculative slice worker falls back to the
        initial-state snapshot.
        """
        initial_sites, initial_qubit_map = maps
        return cls(architecture, len(initial_qubit_map),
                   connectivity=connectivity,
                   initial_sites=initial_sites,
                   initial_qubit_map=initial_qubit_map)

    def copy(self) -> "MappingState":
        """Deep copy of the mapping state (shares the immutable connectivity)."""
        clone = MappingState(
            self.architecture,
            self.num_circuit_qubits,
            connectivity=self.connectivity,
            initial_sites=list(self._atom_to_site),
            initial_qubit_map=list(self._qubit_to_atom),
        )
        clone.num_swaps_applied = self.num_swaps_applied
        clone.num_moves_applied = self.num_moves_applied
        return clone

    def consistency_check(self) -> None:
        """Raise if the forward and inverse maps disagree (used by tests)."""
        for atom, site in enumerate(self._atom_to_site):
            if self._site_to_atom[site] != atom:
                raise AssertionError(f"atom {atom} / site {site} maps are inconsistent")
        occupied = sum(1 for atom in self._site_to_atom if atom != _UNOCCUPIED)
        if occupied != self.num_atoms:
            raise AssertionError("number of occupied sites does not match the atom count")
        rebuilt_occupied = {site for site, atom in enumerate(self._site_to_atom)
                            if atom != _UNOCCUPIED}
        if self._occupied != rebuilt_occupied:
            raise AssertionError("incremental occupied-site set drifted from the maps")
        if self._free != set(range(self.num_sites)) - rebuilt_occupied:
            raise AssertionError("incremental free-site set drifted from the maps")
        if self._free_mask is not None:
            mask_free = {site for site in range(self.num_sites) if self._free_mask[site]}
            if mask_free != self._free:
                raise AssertionError("free-site mask drifted from the incremental sets")
        for qubit, atom in enumerate(self._qubit_to_atom):
            if self._atom_to_qubit[atom] != qubit:
                raise AssertionError(f"qubit {qubit} / atom {atom} maps are inconsistent")
