"""Hybrid gate/shuttling circuit mapping — the paper's primary contribution."""

from .config import MapperConfig
from .decision import CapabilityDecider, CapabilityDecision, GateCostEstimate
from .gate_router import GateRouter, SwapCandidate, SwapCostCache
from .hybrid_mapper import HybridMapper, MappingError
from .initial_layout import (
    LAYOUT_STRATEGIES,
    compact_layout,
    create_initial_state,
    identity_layout,
    interaction_graph_layout,
)
from .layers import LayerManager
from .multiqubit import GatePosition, find_gate_position
from .partition import (
    CircuitSlice,
    PartitionNode,
    PartitionPlan,
    crossing_counts,
    partition_circuit,
    partition_circuit_tree,
    slice_subcircuit,
)
from .regioncache import CrossRoundCache
from .replay import StreamValidator, assert_stream_valid, validate_stream
from .result import (
    CircuitGateOp,
    MappedOperation,
    MappingResult,
    ShuttleOp,
    SwapOp,
)
from .shard import ShardedRouter
from .shuttling_router import ShuttlingRouter
from .state import MappingState

__all__ = [
    "HybridMapper",
    "MapperConfig",
    "MappingError",
    "MappingState",
    "MappingResult",
    "MappedOperation",
    "CircuitGateOp",
    "SwapOp",
    "ShuttleOp",
    "LayerManager",
    "CapabilityDecider",
    "CapabilityDecision",
    "GateCostEstimate",
    "GateRouter",
    "SwapCandidate",
    "SwapCostCache",
    "ShuttlingRouter",
    "CrossRoundCache",
    "CircuitSlice",
    "PartitionNode",
    "PartitionPlan",
    "ShardedRouter",
    "partition_circuit",
    "partition_circuit_tree",
    "crossing_counts",
    "slice_subcircuit",
    "validate_stream",
    "StreamValidator",
    "assert_stream_valid",
    "GatePosition",
    "find_gate_position",
    "identity_layout",
    "compact_layout",
    "interaction_graph_layout",
    "create_initial_state",
    "LAYOUT_STRATEGIES",
]
