"""Cross-round routing caches with occupancy-region invalidation.

Both per-round hot loops of the hybrid mapper re-derive state that is almost
always unchanged between consecutive routing rounds:

* the **capability decision** (:mod:`repro.mapping.decision`) re-estimates
  SWAP and move effort for every front/lookahead gate, and
* the **candidate move chains** (:mod:`repro.mapping.shuttling_router`)
  are re-constructed from scratch for every shuttling front gate.

Each round, however, mutates only a handful of sites (the sources and
destinations of one applied move chain, or nothing at all when a SWAP was
chosen), so the verdicts and chains of gates whose inspected lattice region
is effectively unchanged can simply be replayed.  :class:`CrossRoundCache`
implements exactly that, with three invalidation levels:

* **Region stamps** (decisions, fast path): a decision inspects only the
  gate-qubit sites and the free-trap count inside each site's interaction
  neighbourhood (``free_sites_near`` in
  :meth:`~repro.mapping.decision.CapabilityDecider.estimate`; everything
  else is immutable site geometry).  While
  :meth:`~repro.mapping.state.MappingState.neighbourhoods_unchanged_since`
  holds — an O(1) stamp read per gate qubit — the cached verdict replays.
* **Change journal** (chains, fast path): each chain entry remembers the
  occupancy epoch it was last validated at; the state's occupancy-change
  journal (:meth:`~repro.mapping.state.MappingState.changed_sites_since`)
  names the few sites mutated since.  If none of them land in the entry's
  recorded footprint the entry replays with O(changes) membership probes —
  no set algebra over the region at all.  (Atoms never trade sites — SWAPs
  reassign qubits, only moves change occupancy — so an occupancy-untouched
  site also pins the atom identity read there.)
* **Read values** (fallback): a touched region does not mean the *result*
  changed.  The decision entry keeps the per-anchor free counts it was
  computed from and revalidates by recomputing them (one C-level set
  intersection per anchor); the chain entry keeps a **free-site-aware
  encoding** of what the construction read — the region it scanned and the
  free subset it observed inside it (:class:`ChainReads`, recorded by
  ``ShuttlingRouter._build_chain``) — and revalidates with a single
  intersection against the live free-site set: on a dense lattice the free
  set is the small side, so the check is cheap exactly where chains are
  most valuable.  A site that changed and changed back, or a move that
  never intersects a gate's reads, costs no rebuild.

Chain entries are additionally keyed on the current ``(atom, site)`` of
each gate qubit: cached chains embed atom identities, which SWAP gates
reassign without touching occupancy.

Replay is bit-identical by construction: a hit means every input the cached
computation read still holds, so re-running it would produce the same
decision object / chain list.  The differential harness under
``tests/differential/`` and the golden digests under ``tests/golden/``
enforce this against the ``MapperConfig(cross_round_cache=False)`` reference
path on every change.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple, TYPE_CHECKING

from ..shuttling.moves import MoveChain
from .state import MappingState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..circuit.gate import Gate
    from .decision import CapabilityDecision

__all__ = ["ChainReads", "CrossRoundCache"]

#: Journal scan budget of the back-off expiry check: one quiet probe per
#: cooldown period covers up to this many journal entries (a 64-round
#: cooldown churning ~4 sites per round stays within it).
_QUIET_SCAN_LIMIT = 256


class ChainReads:
    """Free-site-aware record of the occupancy values one construction read.

    During recording, ``occupied`` / ``free`` partition the scanned sites by
    the state the construction saw on the *live* lattice (the chain's own
    simulated moves are excluded by the recorder — their effect is a
    deterministic consequence of earlier reads); ``atom_reads`` maps
    inspected blocking-atom sites to the atom found there (``None`` for an
    empty trap).

    :meth:`seal` compacts that into the validation encoding — ``region``
    (every scanned site) and ``free_sub`` (the free subset observed inside
    it) — under which "every read still holds" collapses to one set
    intersection::

        region & free_now == free_sub

    which is equivalent to the exact per-read predicate (``occupied`` and
    ``free`` partition ``region``, so the intersection pins both sides) but
    intersects against the *free* set — the small side on a dense lattice.
    ``footprint`` additionally covers the atom-read sites so the change
    journal can clear the whole entry with membership probes alone.
    """

    __slots__ = ("occupied", "free", "atom_reads", "_pending", "region",
                 "free_sub", "footprint")

    def __init__(self) -> None:
        self.occupied: Set[int] = set()
        self.free: Set[int] = set()
        self.atom_reads: Dict[int, Optional[int]] = {}
        self._pending: List = []
        self.region: Optional[FrozenSet[int]] = None
        self.free_sub: Optional[FrozenSet[int]] = None
        self.footprint: Optional[FrozenSet[int]] = None

    def record_batch(self, batch, occupied_now: Set[int],
                     delta: Optional[Set[int]]) -> None:
        """Record an occupancy scan of the set-like ``batch`` against
        ``occupied_now``.

        ``delta`` holds the sites already mutated by the construction's own
        simulation; their live value was recorded before they entered the
        delta (or is pinned by the cache key), so they are skipped here.
        """
        if delta:
            batch = batch - delta
        seen_occupied = batch & occupied_now
        self.occupied |= seen_occupied
        self.free |= batch - seen_occupied
        self.region = None

    def record_region(self, sites) -> None:
        """Record an occupancy scan of every site in the set-like ``sites``
        against the *live* state, deferring the value partition to
        :meth:`seal`.

        The live state never mutates during one construction, so the values
        read now equal the values at seal time — recording is one reference
        append (the kernel passes the topology's cached frozensets), with
        all set algebra paid once at store time instead of per scan.
        """
        self._pending.append(sites)
        self.region = None

    def seal(self, state: MappingState) -> "ChainReads":
        """Freeze the recorded reads into the validation encoding.

        Must be called in the same routing round as the recording (the
        deferred :meth:`record_region` partitions against the live
        occupancy here).
        """
        region = self.occupied | self.free
        for sites in self._pending:
            region |= sites
        # record_batch values match the live state (its delta exclusion
        # guarantees it), so one intersection partitions everything.
        frozen = frozenset(region)
        self.region = frozen
        self.free_sub = frozenset(frozen & state.free_sites())
        if all(site in frozen for site in self.atom_reads):
            self.footprint = frozen
        else:
            self.footprint = frozen | frozenset(self.atom_reads)
        return self

    def still_valid(self, state: MappingState) -> bool:
        """True if every recorded read would produce the same value now."""
        if self.region is None:
            if self._pending:
                # Unsealed deferred reads cannot be validated against a
                # possibly-changed state; force a rebuild (never replays
                # stale — this path does not occur in the cache flow, which
                # always seals at store time).
                return False
            if not self.occupied <= state.occupied_sites():
                return False
            if not self.free.isdisjoint(state.occupied_sites()):
                return False
        elif self.region & state.free_sites() != self.free_sub:
            return False
        atom_at_site = state.atom_at_site
        for site, atom in self.atom_reads.items():
            if atom_at_site(site) != atom:
                return False
        return True


class CrossRoundCache:
    """Cross-round memo for capability decisions and candidate move chains.

    One instance is owned by a :class:`~repro.mapping.hybrid_mapper.HybridMapper`
    (when ``MapperConfig.cross_round_cache`` is on) and shared by its
    :class:`~repro.mapping.decision.CapabilityDecider` and
    :class:`~repro.mapping.shuttling_router.ShuttlingRouter`.  Entries are
    bound to one mapping run's :class:`MappingState`; :meth:`begin_run`
    clears them, so stale stamps from a previous state can never validate.
    """

    def __init__(self) -> None:
        # gate_index -> [sites, stamp epoch, per-anchor free counts, decision];
        # a list so revalidation can advance the epoch in place.
        self._decisions: Dict[int, List] = {}
        # gate_index -> [(atom, site) pairs, sealed reads, chains, epoch];
        # a list so a validated probe can re-arm the epoch in place, keeping
        # the journal slice of the next probe short.
        self._chains: Dict[int, List] = {}
        # Adaptive back-off: gates whose entries keep getting invalidated
        # (their reads sit in a churning part of the lattice) stop paying
        # the recording overhead for a few rounds.  gate_index -> current
        # invalidation streak / remaining rounds without recording.
        self._chain_invalidations: Dict[int, int] = {}
        self._chain_cooldown: Dict[int, int] = {}
        # Back-off recovery: gate_index -> (footprint of the invalidated
        # entry, epoch the cooldown was armed at).  A footprint left
        # untouched for the whole cooldown clears the invalidation streak at
        # expiry, so a region that merely churned early is not penalised
        # forever.
        self._chain_quiet: Dict[int, Tuple] = {}
        self._state: Optional[MappingState] = None
        self.decision_hits = 0
        self.decision_misses = 0
        self.chain_hits = 0
        self.chain_misses = 0

    # ------------------------------------------------------------------
    # Run binding
    # ------------------------------------------------------------------
    def begin_run(self, state: MappingState) -> None:
        """Bind the cache to one mapping run, dropping all previous entries."""
        self._decisions.clear()
        self._chains.clear()
        self._chain_invalidations.clear()
        self._chain_cooldown.clear()
        self._chain_quiet.clear()
        self._state = state

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters (used by tests and the perf harness)."""
        return {
            "decision_hits": self.decision_hits,
            "decision_misses": self.decision_misses,
            "chain_hits": self.chain_hits,
            "chain_misses": self.chain_misses,
        }

    # ------------------------------------------------------------------
    # Capability decisions
    # ------------------------------------------------------------------
    def lookup_decision(self, state: MappingState, gate: "Gate",
                        gate_index: int) -> Optional["CapabilityDecision"]:
        """Replay a cached decision, or ``None`` on a miss.

        Valid iff the gate's qubits sit on the same sites as at store time
        and the free-trap count around each of those sites is unchanged —
        checked first via the O(1) neighbourhood stamps, then (when a
        mutation did land nearby) by recomputing the counts.
        """
        entry = self._decisions.get(gate_index)
        if entry is None or state is not self._state:
            self.decision_misses += 1
            return None
        sites, epoch, free_counts, decision = entry
        site_of_qubit = state.site_of_qubit
        for qubit, site in zip(gate.qubits, sites):
            if site_of_qubit(qubit) != site:
                self.decision_misses += 1
                return None
        if (free_counts is not None
                and not state.neighbourhoods_unchanged_since(sites, epoch)):
            num_free = state.num_free_sites_near
            for site, count in zip(sites, free_counts):
                if num_free(site) != count:
                    self.decision_misses += 1
                    return None
            # The counts the estimate depends on are unchanged; re-arm the
            # stamp fast path from the current epoch.
            entry[1] = state.occupancy_epoch
        self.decision_hits += 1
        return decision

    def store_decision(self, state: MappingState, gate: "Gate", gate_index: int,
                       decision: "CapabilityDecision",
                       free_counts: Optional[Tuple[int, ...]]) -> None:
        """Memoise one decision.

        ``free_counts`` are the per-anchor free-trap counts the estimate
        read (captured by the decider), or ``None`` when it read no
        occupancy at all — such decisions depend only on the gate-qubit
        sites and stay valid under any occupancy change.
        """
        if state is not self._state:
            return
        sites = tuple(state.site_of_qubit(q) for q in gate.qubits)
        self._decisions[gate_index] = [sites, state.occupancy_epoch,
                                       free_counts, decision]

    # ------------------------------------------------------------------
    # Candidate move chains
    # ------------------------------------------------------------------
    def probe_chains(self, state: MappingState, gate: "Gate", gate_index: int
                     ) -> Tuple[Optional[List[MoveChain]], Optional[ChainReads]]:
        """One combined lookup / record decision for a gate's chains.

        Returns ``(chains, None)`` on a hit — valid iff every gate qubit
        still has the same ``(atom, site)`` pair as at store time and every
        occupancy value the construction read still holds (checked via the
        change journal when it covers the entry's epoch, else via
        :meth:`ChainReads.still_valid`); the stored list is returned by
        reference, neither it nor the chains are mutated downstream.

        On a miss, returns ``(None, reads)`` where ``reads`` is a fresh
        recorder the construction should fill for :meth:`store_chains`, or
        ``(None, None)`` while the gate is backing off: gates whose entries
        keep getting invalidated skip the recording overhead for
        exponentially growing (but capped) stretches.  Every cooldown
        expires into a fresh recording probe, and the expiry runs one
        journal check: a footprint untouched for the whole cooldown clears
        the invalidation streak — a region that stopped churning recovers
        fully instead of being penalised forever, at the cost of a single
        bounded scan per back-off period rather than per probe.
        """
        entry = self._chains.get(gate_index)
        if entry is not None and state is self._state:
            key, reads, chains, epoch = entry
            atom_of_qubit = state.atom_of_qubit
            site_of_atom = state.site_of_atom
            for qubit, (atom, site) in zip(gate.qubits, key):
                if atom_of_qubit(qubit) != atom or site_of_atom(atom) != site:
                    self._note_chain_invalidation(state, gate_index, reads)
                    break
            else:
                untouched = state.region_untouched_since(reads.footprint, epoch)
                valid = untouched is True or reads.still_valid(state)
                if valid:
                    entry[3] = state.occupancy_epoch
                    # Decrement (rather than clear) the streak: gates that
                    # alternate hits and invalidations hover around
                    # break-even, so they should drift into back-off too.
                    streak = self._chain_invalidations.get(gate_index, 0)
                    if streak:
                        self._chain_invalidations[gate_index] = streak - 1
                    self.chain_hits += 1
                    return chains, None
                self._note_chain_invalidation(state, gate_index, reads)
        else:
            self.chain_misses += 1
        cooldown = self._chain_cooldown.get(gate_index, 0)
        if cooldown:
            if cooldown > 1:
                self._chain_cooldown[gate_index] = cooldown - 1
                return None, None
            # Expiry probe: recording resumes unconditionally; the streak is
            # cleared too when the invalidated footprint stayed untouched
            # for the whole cooldown (the region settled), otherwise it
            # persists and the next invalidation re-arms a longer cooldown.
            del self._chain_cooldown[gate_index]
            quiet = self._chain_quiet.pop(gate_index, None)
            if quiet is not None and state.region_untouched_since(
                    quiet[0], quiet[1], scan_limit=_QUIET_SCAN_LIMIT) is True:
                self._chain_invalidations.pop(gate_index, None)
        return None, ChainReads()

    def _note_chain_invalidation(self, state: MappingState, gate_index: int,
                                 reads: ChainReads) -> None:
        """Count a stored-entry invalidation and arm the back-off."""
        self.chain_misses += 1
        del self._chains[gate_index]
        streak = self._chain_invalidations.get(gate_index, 0) + 1
        self._chain_invalidations[gate_index] = streak
        if streak >= 2:
            # The cap bounds the recovery latency: even a gate that churned
            # for a long stretch gets a fresh recording probe within 64
            # rounds of the churn stopping, and the expiry check above
            # clears the streak as soon as a whole cooldown passes quietly.
            self._chain_cooldown[gate_index] = min(4 ** (streak - 1), 64)
            # Stored entries are always sealed, so the footprint is set.
            self._chain_quiet[gate_index] = (reads.footprint,
                                             state.occupancy_epoch)

    def store_chains(self, state: MappingState, gate: "Gate", gate_index: int,
                     chains: List[MoveChain],
                     reads: Optional[ChainReads]) -> None:
        """Memoise the candidate chains of one gate.

        ``reads`` is the exact occupancy read set recorded by
        ``_build_chain``; ``None`` disables storing (the construction ran
        without recording).
        """
        if state is not self._state or reads is None:
            return
        key = tuple((state.atom_of_qubit(q), state.site_of_qubit(q))
                    for q in gate.qubits)
        self._chains[gate_index] = [key, reads.seal(state), chains,
                                    state.occupancy_epoch]
