"""Pass-based compilation pipeline.

The decompose → layout → route → schedule → evaluate flow as composable
passes over a shared :class:`CompilationContext`, with
:func:`compile_circuit` as the canonical single-circuit entry point.  The
batch-compilation service (:mod:`repro.service`) runs this pipeline in
worker processes for many circuits at once.
"""

from .context import CompilationContext, PipelineError
from .manager import PassManager, compile_circuit, default_passes, default_pipeline
from .passes import (
    CompilationPass,
    DecomposePass,
    EvaluatePass,
    InitialLayoutPass,
    RoutingPass,
    SchedulePass,
)

__all__ = [
    "CompilationContext",
    "PipelineError",
    "CompilationPass",
    "DecomposePass",
    "InitialLayoutPass",
    "RoutingPass",
    "SchedulePass",
    "EvaluatePass",
    "PassManager",
    "default_passes",
    "default_pipeline",
    "compile_circuit",
]
