"""The pass manager: ordered pass execution with per-pass timing.

:func:`compile_circuit` is the canonical single-circuit entry point of the
reproduction — every harness (Table-1 regeneration, pytest benchmarks, perf
report, batch service, examples) routes through it, so there is exactly one
compile path to maintain and instrument.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..circuit.circuit import QuantumCircuit
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from ..mapping.config import MapperConfig
from ..telemetry import tracing
from ..telemetry.registry import get_registry
from .context import CompilationContext
from .passes import (
    CompilationPass,
    DecomposePass,
    EvaluatePass,
    InitialLayoutPass,
    RoutingPass,
    SchedulePass,
)

__all__ = ["PassManager", "default_passes", "default_pipeline", "compile_circuit"]


class PassManager:
    """Runs an ordered sequence of passes over a compilation context.

    The pass list is plain and public: consumers compose pipelines by
    slicing, inserting or replacing entries before calling :meth:`run`.
    """

    def __init__(self, passes: Sequence[CompilationPass]) -> None:
        self.passes: List[CompilationPass] = list(passes)

    def run(self, context: CompilationContext) -> CompilationContext:
        """Execute every pass in order, accumulating wall time per pass name.

        Timing is recorded in a ``finally`` block so a raising pass still
        books its own elapsed time under its own name — otherwise the time
        spent in a failing ``evaluate`` pass would be invisible and harness
        reports would mis-attribute it to the preceding stages.

        Each pass additionally records into the telemetry substrate: a
        ``pass.<name>`` span when a trace is active, and an observation in
        the ``repro_pass_seconds`` histogram (labelled by pass name).
        Telemetry reads the clock and nothing else — it cannot influence
        the passes, so op streams are identical with it on or off.
        """
        registry = get_registry()
        for pipeline_pass in self.passes:
            tick = time.perf_counter()
            try:
                with tracing.span(f"pass.{pipeline_pass.name}"):
                    pipeline_pass.run(context)
            finally:
                elapsed = time.perf_counter() - tick
                context.pass_seconds[pipeline_pass.name] = (
                    context.pass_seconds.get(pipeline_pass.name, 0.0) + elapsed)
                registry.histogram(
                    "repro_pass_seconds",
                    help="Wall time per compilation pass",
                    labels={"pass": pipeline_pass.name}).observe(elapsed)
        return context

    def pass_names(self) -> List[str]:
        return [pipeline_pass.name for pipeline_pass in self.passes]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PassManager({self.pass_names()})"


def default_passes(*, layout: str = "identity",
                   evaluate: bool = True) -> List[CompilationPass]:
    """The canonical decompose → layout → route [→ schedule → evaluate] flow."""
    passes: List[CompilationPass] = [
        DecomposePass(),
        InitialLayoutPass(layout),
        RoutingPass(),
    ]
    if evaluate:
        passes.append(SchedulePass())
        passes.append(EvaluatePass())
    return passes


def default_pipeline(*, layout: str = "identity",
                     evaluate: bool = True) -> PassManager:
    """A :class:`PassManager` over :func:`default_passes`."""
    return PassManager(default_passes(layout=layout, evaluate=evaluate))


def compile_circuit(circuit: QuantumCircuit,
                    architecture: NeutralAtomArchitecture,
                    config: Optional[MapperConfig] = None, *,
                    connectivity: Optional[SiteConnectivity] = None,
                    alpha_ratio: Optional[float] = None,
                    layout: str = "identity",
                    evaluate: bool = True,
                    pass_manager: Optional[PassManager] = None
                    ) -> CompilationContext:
    """Compile one circuit through the (default or given) pipeline.

    Returns the finished :class:`CompilationContext`; the mapped operation
    stream is ``context.result`` and, when ``evaluate`` is on, the Table-1a
    metrics are ``context.metrics``.
    """
    context = CompilationContext(
        circuit=circuit,
        architecture=architecture,
        config=config or MapperConfig(),
        connectivity=connectivity,
        alpha_ratio=alpha_ratio,
    )
    manager = pass_manager or default_pipeline(layout=layout, evaluate=evaluate)
    return manager.run(context)
