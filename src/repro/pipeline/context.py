"""Shared state threaded through a compilation pipeline run.

A :class:`CompilationContext` carries everything one compilation needs — the
circuit being lowered, the target architecture and mapper configuration, the
shared immutable artifacts (site connectivity), and the products each pass
leaves behind (mapping result, schedules, metrics, per-pass timings).  Passes
communicate exclusively through the context, which is what makes the pipeline
composable: a consumer can drop, replace or insert passes without touching
the others.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..circuit.circuit import QuantumCircuit
from ..evaluation.metrics import EvaluationMetrics
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from ..mapping.config import MapperConfig
from ..mapping.result import MappingResult
from ..mapping.state import MappingState
from ..scheduling.schedule import Schedule

__all__ = ["CompilationContext", "PipelineError"]


class PipelineError(RuntimeError):
    """Raised when a pass runs before the passes it depends on."""


@dataclass
class CompilationContext:
    """Mutable state of one circuit compilation.

    Attributes
    ----------
    circuit:
        The circuit in its current lowering state; rewriting passes replace
        it (the original input is preserved in ``source_circuit``).
    architecture / config / connectivity:
        The compilation target.  ``connectivity`` may be shared across many
        contexts (it is immutable); :meth:`ensure_connectivity` builds it on
        first use when the caller did not supply one.
    alpha_ratio:
        Decision ratio recorded on the metrics (hybrid sweeps).
    initial_state:
        Mapping state the routing pass starts from (layout pass product).
    result / mapped_schedule / reference_schedule / metrics:
        Products of the routing, scheduling and evaluation passes.
    artifacts:
        Free-form side channel for custom passes.
    pass_seconds:
        Wall-clock seconds spent in each pass, keyed by pass name and
        accumulated in execution order.
    """

    circuit: QuantumCircuit
    architecture: NeutralAtomArchitecture
    config: MapperConfig
    connectivity: Optional[SiteConnectivity] = None
    alpha_ratio: Optional[float] = None
    source_circuit: Optional[QuantumCircuit] = None
    initial_state: Optional[MappingState] = None
    result: Optional[MappingResult] = None
    mapped_schedule: Optional[Schedule] = None
    reference_schedule: Optional[Schedule] = None
    metrics: Optional[EvaluationMetrics] = None
    artifacts: Dict[str, Any] = field(default_factory=dict)
    pass_seconds: Dict[str, float] = field(default_factory=dict)

    def ensure_connectivity(self) -> SiteConnectivity:
        """The shared :class:`SiteConnectivity`, building it on first use."""
        if self.connectivity is None:
            self.connectivity = SiteConnectivity(self.architecture)
        return self.connectivity

    def require_result(self) -> MappingResult:
        if self.result is None:
            raise PipelineError(
                "no mapping result in the context; run a RoutingPass first")
        return self.result

    def require_schedules(self) -> "tuple[Schedule, Schedule]":
        if self.reference_schedule is None or self.mapped_schedule is None:
            raise PipelineError(
                "no schedules in the context; run a SchedulePass first")
        return self.reference_schedule, self.mapped_schedule

    def require_metrics(self) -> EvaluationMetrics:
        if self.metrics is None:
            raise PipelineError(
                "no metrics in the context; run an EvaluatePass first")
        return self.metrics
