"""Typed passes of the compilation pipeline.

The classical decompose → layout → route → schedule → evaluate flow that
every consumer used to hand-wire is expressed as five small passes over a
:class:`~repro.pipeline.context.CompilationContext`:

* :class:`DecomposePass` — normalise the circuit to the native gate set
  (``C^{m-1}X`` to ``C^{m-1}Z``, Section 4.1).
* :class:`InitialLayoutPass` — build the initial
  :class:`~repro.mapping.state.MappingState` from a named strategy.
* :class:`RoutingPass` — run the :class:`~repro.mapping.hybrid_mapper.HybridMapper`
  and store the mapped operation stream.
* :class:`SchedulePass` — lower both the reference (unmapped) circuit and
  the mapped stream to timed hardware schedules.
* :class:`EvaluatePass` — derive the Table-1a metrics from the schedules.

Each pass touches only the context, so custom passes (circuit rewrites,
alternative routers, extra analyses) slot in anywhere.
"""

from __future__ import annotations

import abc

from ..circuit.decompose import decompose_mcx_to_mcz
from ..evaluation.metrics import metrics_from_schedules
from ..mapping.hybrid_mapper import HybridMapper
from ..mapping.initial_layout import LAYOUT_STRATEGIES, create_initial_state
from ..scheduling.scheduler import Scheduler
from .context import CompilationContext

__all__ = [
    "CompilationPass",
    "DecomposePass",
    "InitialLayoutPass",
    "RoutingPass",
    "SchedulePass",
    "EvaluatePass",
]


class CompilationPass(abc.ABC):
    """One stage of the compilation pipeline.

    Subclasses set ``name`` (the key under which the pass manager records
    wall time) and implement :meth:`run`, mutating the context in place.
    """

    name: str = "pass"

    @abc.abstractmethod
    def run(self, context: CompilationContext) -> None:
        """Execute the pass on ``context``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class DecomposePass(CompilationPass):
    """Normalise the circuit to the native gate set (idempotent)."""

    name = "decompose"

    def run(self, context: CompilationContext) -> None:
        if context.source_circuit is None:
            context.source_circuit = context.circuit
        context.circuit = decompose_mcx_to_mcz(context.circuit)


class InitialLayoutPass(CompilationPass):
    """Build the initial mapping state from a named layout strategy.

    A state already present on the context (supplied by the caller, e.g. for
    mid-circuit re-compilation) is respected and left untouched.
    """

    name = "initial_layout"

    def __init__(self, strategy: str = "identity") -> None:
        if strategy not in LAYOUT_STRATEGIES:
            raise ValueError(f"unknown layout strategy {strategy!r}; "
                             f"choose from {LAYOUT_STRATEGIES}")
        self.strategy = strategy

    def run(self, context: CompilationContext) -> None:
        if context.initial_state is not None:
            return
        context.initial_state = create_initial_state(
            self.strategy, context.architecture, context.circuit,
            connectivity=context.ensure_connectivity())


class RoutingPass(CompilationPass):
    """Map the circuit with the hybrid gate/shuttling router."""

    name = "routing"

    def __init__(self, mapper_factory=None) -> None:
        """``mapper_factory(architecture, config, connectivity=...)`` override."""
        self.mapper_factory = mapper_factory or HybridMapper

    def run(self, context: CompilationContext) -> None:
        mapper = self.mapper_factory(context.architecture, context.config,
                                     connectivity=context.ensure_connectivity())
        context.result = mapper.map(context.circuit,
                                    initial_state=context.initial_state)


class SchedulePass(CompilationPass):
    """Lower the reference circuit and the mapped stream to timed schedules."""

    name = "schedule"

    def run(self, context: CompilationContext) -> None:
        result = context.require_result()
        scheduler = Scheduler(context.architecture,
                              connectivity=context.ensure_connectivity())
        context.reference_schedule = scheduler.schedule_circuit(
            decompose_mcx_to_mcz(context.circuit))
        context.mapped_schedule = scheduler.schedule_result(result)


class EvaluatePass(CompilationPass):
    """Derive the Table-1a metrics from the two schedules."""

    name = "evaluate"

    def run(self, context: CompilationContext) -> None:
        reference, mapped = context.require_schedules()
        context.metrics = metrics_from_schedules(
            context.circuit, context.require_result(), context.architecture,
            reference, mapped, alpha_ratio=context.alpha_ratio)
