"""Approximate success probability (Eq. 1) and derived fidelity measures.

The paper evaluates mapping quality with the approximate success probability

``P = exp(-t_idle / T_eff) * prod_O F_O``,   ``T_eff = T1 T2 / (T1 + T2)``,

where the product runs over every circuit operation and ``t_idle`` is the
total idle time of the scheduled circuit.  Because ``P`` underflows to zero
for the larger benchmarks, all computations are carried out in log space and
the exported quantity is ``log P``; the fidelity-decrease measure of
Table 1a, ``delta_F = -log(P_mapped / P_original)``, is then simply
``log P_original - log P_mapped``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..hardware.architecture import NeutralAtomArchitecture
from ..scheduling.schedule import Schedule

__all__ = ["FidelityBreakdown", "log_success_probability", "success_probability",
           "fidelity_decrease"]


@dataclass(frozen=True)
class FidelityBreakdown:
    """Decomposition of the (log) success probability of one schedule."""

    log_operation_fidelity: float
    log_idle_factor: float
    idle_time_us: float
    makespan_us: float
    num_operations: int

    @property
    def log_success_probability(self) -> float:
        return self.log_operation_fidelity + self.log_idle_factor

    @property
    def success_probability(self) -> float:
        """The linear-scale probability (may underflow to 0.0 for large circuits)."""
        return math.exp(self.log_success_probability)


def analyse(schedule: Schedule, architecture: NeutralAtomArchitecture) -> FidelityBreakdown:
    """Compute the fidelity breakdown of a schedule."""
    log_fidelity = 0.0
    for operation in schedule:
        log_fidelity += math.log(operation.fidelity)
    idle = schedule.idle_time()
    t_eff = architecture.effective_decoherence_time
    return FidelityBreakdown(
        log_operation_fidelity=log_fidelity,
        log_idle_factor=-idle / t_eff,
        idle_time_us=idle,
        makespan_us=schedule.makespan,
        num_operations=len(schedule),
    )


def log_success_probability(schedule: Schedule,
                            architecture: NeutralAtomArchitecture) -> float:
    """Natural logarithm of the approximate success probability ``P`` (Eq. 1)."""
    return analyse(schedule, architecture).log_success_probability


def success_probability(schedule: Schedule,
                        architecture: NeutralAtomArchitecture) -> float:
    """Approximate success probability ``P`` on the linear scale."""
    return analyse(schedule, architecture).success_probability


def fidelity_decrease(mapped: Schedule, original: Schedule,
                      architecture: NeutralAtomArchitecture) -> float:
    """``delta_F = -log(P_mapped / P_original)`` (smaller is better, 0 = lossless).

    Both schedules are evaluated in log space, so the ratio never underflows.
    """
    log_mapped = log_success_probability(mapped, architecture)
    log_original = log_success_probability(original, architecture)
    return log_original - log_mapped
