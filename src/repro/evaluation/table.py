"""Experiment harness regenerating the paper's Table 1.

The harness runs the three compiler settings of the evaluation —
(A) shuttling-only, (B) gate-only and (C) the proposed hybrid approach — for a
set of benchmark circuits on a chosen hardware preset, and renders the result
in the layout of Table 1a.  For the hybrid mode a small grid of decision
ratios ``alpha = alpha_g / alpha_s`` is swept and the best (lowest
``delta_F``) result is kept, mirroring the paper's protocol.

Because the reproduction runs on a pure-Python mapper, the default experiment
uses scaled-down circuits (the ``scale`` parameter) so that the whole table
regenerates in minutes; ``scale=1.0`` reruns the paper's original sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..circuit.circuit import QuantumCircuit
from ..circuit.decompose import decompose_mcx_to_mcz
from ..circuit.library import BENCHMARK_NAMES, get_benchmark
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from ..hardware.presets import preset
from ..mapping.config import MapperConfig
from ..workloads import lattice_rows_for, scaled_atom_count, scaled_register_size
from .metrics import EvaluationMetrics

__all__ = [
    "ExperimentSettings",
    "run_single",
    "run_mode_comparison",
    "run_table1",
    "format_table",
    "benchmark_description_rows",
    "DEFAULT_ALPHA_GRID",
]

#: Decision ratios swept for the hybrid mode (best kept).  The paper reports
#: best ratios between 0.95 and 1.06; the reproduction sweeps a wider grid
#: (including strongly gate- and shuttling-leaning ratios) because the
#: reproduction's success-probability estimates are calibrated slightly
#: differently from the original implementation.
DEFAULT_ALPHA_GRID: Tuple[float, ...] = (0.05, 0.5, 0.95, 1.0, 1.05, 2.0, 20.0)


@dataclass
class ExperimentSettings:
    """Configuration of one Table-1 regeneration run.

    Attributes
    ----------
    hardware:
        Preset name (``"shuttling"``, ``"gate"`` or ``"mixed"``).
    circuits:
        Benchmark names (defaults to the paper's six circuits).
    scale:
        Fraction of the paper's register sizes to run (1.0 = full size).
        The lattice is scaled accordingly so the fill factor stays constant.
    alpha_grid:
        Decision ratios to sweep in hybrid mode.
    seed:
        Seed for the randomised benchmark generators.
    """

    hardware: str = "mixed"
    circuits: Sequence[str] = BENCHMARK_NAMES
    scale: float = 0.2
    alpha_grid: Sequence[float] = DEFAULT_ALPHA_GRID
    seed: int = 2024

    def circuit_size(self, name: str) -> int:
        return scaled_register_size(name, self.scale, min_size=4)

    def lattice_rows(self) -> int:
        """Lattice edge length so that the atom count stays below the sites."""
        return lattice_rows_for(self.num_atoms())

    def num_atoms(self) -> int:
        return scaled_atom_count(
            self.scale, (self.circuit_size(name) for name in self.circuits))

    def build_architecture(self) -> NeutralAtomArchitecture:
        return preset(self.hardware, lattice_rows=self.lattice_rows(),
                      num_atoms=self.num_atoms())


def _prepare_circuit(name: str, size: int, seed: int) -> QuantumCircuit:
    """Instantiate a benchmark and normalise it to the native gate set."""
    circuit = get_benchmark(name, num_qubits=size, seed=seed)
    return decompose_mcx_to_mcz(circuit)


def run_single(circuit: QuantumCircuit, architecture: NeutralAtomArchitecture,
               config: MapperConfig,
               connectivity: Optional[SiteConnectivity] = None,
               alpha_ratio: Optional[float] = None) -> EvaluationMetrics:
    """Compile one circuit through the standard pipeline and return its metrics."""
    # Imported lazily: the pipeline consumes evaluation.metrics, so a module
    # -level import here would be circular.
    from ..pipeline.manager import compile_circuit

    context = compile_circuit(circuit, architecture, config,
                              connectivity=connectivity, alpha_ratio=alpha_ratio)
    return context.require_metrics()


def run_mode_comparison(circuit: QuantumCircuit,
                        architecture: NeutralAtomArchitecture,
                        alpha_grid: Sequence[float] = DEFAULT_ALPHA_GRID,
                        connectivity: Optional[SiteConnectivity] = None
                        ) -> Dict[str, EvaluationMetrics]:
    """Run the three compiler settings (A/B/C) on one circuit.

    Returns a dictionary with keys ``"shuttling_only"``, ``"gate_only"`` and
    ``"hybrid"``; the hybrid entry is the best over the alpha grid.
    """
    connectivity = connectivity or SiteConnectivity(architecture)
    results: Dict[str, EvaluationMetrics] = {}
    results["shuttling_only"] = run_single(
        circuit, architecture, MapperConfig.shuttling_only(), connectivity)
    results["gate_only"] = run_single(
        circuit, architecture, MapperConfig.gate_only(), connectivity)

    best_hybrid: Optional[EvaluationMetrics] = None
    for alpha in alpha_grid:
        metrics = run_single(circuit, architecture, MapperConfig.hybrid(alpha),
                             connectivity, alpha_ratio=alpha)
        if best_hybrid is None or metrics.delta_fidelity < best_hybrid.delta_fidelity:
            best_hybrid = metrics
    assert best_hybrid is not None
    results["hybrid"] = best_hybrid
    return results


def run_table1(settings: ExperimentSettings) -> List[Dict[str, EvaluationMetrics]]:
    """Regenerate one hardware block of Table 1a.

    Returns one dictionary (as produced by :func:`run_mode_comparison`) per
    benchmark circuit, in the order of ``settings.circuits``.
    """
    architecture = settings.build_architecture()
    connectivity = SiteConnectivity(architecture)
    rows: List[Dict[str, EvaluationMetrics]] = []
    for name in settings.circuits:
        circuit = _prepare_circuit(name, settings.circuit_size(name), settings.seed)
        rows.append(run_mode_comparison(circuit, architecture,
                                        alpha_grid=settings.alpha_grid,
                                        connectivity=connectivity))
    return rows


def benchmark_description_rows(settings: ExperimentSettings) -> List[Dict[str, int]]:
    """Regenerate Table 1b (benchmark descriptions) for the chosen scale."""
    rows = []
    for name in settings.circuits:
        circuit = _prepare_circuit(name, settings.circuit_size(name), settings.seed)
        arity = circuit.count_by_arity()
        rows.append({
            "name": name,
            "n": circuit.num_qubits,
            "nCZ": arity.get(2, 0),
            "nC2Z": arity.get(3, 0),
            "nC3Z": arity.get(4, 0),
        })
    return rows


def format_table(rows: Sequence[Dict[str, EvaluationMetrics]],
                 hardware_name: str) -> str:
    """Render mode-comparison rows in the layout of Table 1a."""
    header = (f"{'circuit':<10} | {'mode':<15} | {'dCZ':>7} | {'dT [us]':>10} | "
              f"{'dF':>8} | {'RT [s]':>7} | {'alpha':>6}")
    separator = "-" * len(header)
    lines = [f"Hardware setting: {hardware_name}", header, separator]
    for row in rows:
        for mode_key in ("shuttling_only", "gate_only", "hybrid"):
            metrics = row[mode_key]
            alpha = "" if metrics.alpha_ratio is None else f"{metrics.alpha_ratio:.2f}"
            lines.append(
                f"{metrics.circuit_name:<10} | {mode_key:<15} | {metrics.delta_cz:>7} | "
                f"{metrics.delta_t_us:>10.1f} | {metrics.delta_fidelity:>8.2f} | "
                f"{metrics.runtime_seconds:>7.2f} | {alpha:>6}")
        lines.append(separator)
    return "\n".join(lines)
