"""End-to-end evaluation of a mapping run (the columns of Table 1a).

:func:`evaluate` takes an input circuit, its mapping result and the target
architecture, schedules both the original and the mapped realisation, and
reports:

* ``delta_cz`` — additional native CZ gates contributed by inserted SWAPs,
* ``delta_t_us`` — increase in total circuit execution time,
* ``delta_fidelity`` — the fidelity decrease ``delta_F`` (Eq. 1 based),
* ``runtime_seconds`` — mapper wall-clock time (the RT column),
* move/swap statistics useful for the analysis plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..circuit.circuit import QuantumCircuit
from ..circuit.decompose import decompose_mcx_to_mcz
from ..hardware.architecture import NeutralAtomArchitecture
from ..hardware.connectivity import SiteConnectivity
from ..mapping.result import MappingResult
from ..scheduling.scheduler import Scheduler
from .fidelity import analyse, fidelity_decrease

__all__ = ["EvaluationMetrics", "evaluate", "metrics_from_schedules"]


@dataclass(frozen=True)
class EvaluationMetrics:
    """Headline metrics of one mapping run (one cell block of Table 1a)."""

    circuit_name: str
    mode: str
    hardware_name: str
    num_qubits: int
    delta_cz: int
    delta_t_us: float
    delta_fidelity: float
    runtime_seconds: float
    num_swaps: int
    num_moves: int
    mapped_makespan_us: float
    original_makespan_us: float
    mapped_log_success: float
    original_log_success: float
    alpha_ratio: Optional[float] = None

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary row for table rendering / CSV export."""
        return {
            "hardware": self.hardware_name,
            "circuit": self.circuit_name,
            "mode": self.mode,
            "n": self.num_qubits,
            "delta_cz": self.delta_cz,
            "delta_t_us": round(self.delta_t_us, 1),
            "delta_fidelity": round(self.delta_fidelity, 2),
            "runtime_s": round(self.runtime_seconds, 2),
            "num_swaps": self.num_swaps,
            "num_moves": self.num_moves,
            "alpha": self.alpha_ratio,
        }


def evaluate(circuit: QuantumCircuit, result: MappingResult,
             architecture: NeutralAtomArchitecture,
             connectivity: Optional[SiteConnectivity] = None,
             alpha_ratio: Optional[float] = None) -> EvaluationMetrics:
    """Schedule the original and mapped circuits and compute the Table 1a metrics.

    The original circuit is normalised to the native gate set (``C^{m-1}X``
    decomposed to ``C^{m-1}Z``) before scheduling so that both sides are
    measured in the same pulse vocabulary — the same normalisation the mapper
    input receives.
    """
    scheduler = Scheduler(architecture, connectivity=connectivity)

    native_original = decompose_mcx_to_mcz(circuit)
    original_schedule = scheduler.schedule_circuit(native_original)
    mapped_schedule = scheduler.schedule_result(result)
    return metrics_from_schedules(circuit, result, architecture,
                                  original_schedule, mapped_schedule,
                                  alpha_ratio=alpha_ratio)


def metrics_from_schedules(circuit: QuantumCircuit, result: MappingResult,
                           architecture: NeutralAtomArchitecture,
                           original_schedule, mapped_schedule,
                           alpha_ratio: Optional[float] = None
                           ) -> EvaluationMetrics:
    """Compute the Table 1a metrics from already-built schedules.

    Used by the compilation pipeline's evaluate pass, which owns the schedule
    construction (so timing attribution per pass stays accurate) and only
    needs the metric arithmetic from this module.
    """
    original_breakdown = analyse(original_schedule, architecture)
    mapped_breakdown = analyse(mapped_schedule, architecture)

    delta_cz = mapped_schedule.num_cz_gates() - original_schedule.num_cz_gates()
    delta_t = mapped_schedule.makespan - original_schedule.makespan
    delta_f = fidelity_decrease(mapped_schedule, original_schedule, architecture)

    return EvaluationMetrics(
        circuit_name=circuit.name,
        mode=result.mode,
        hardware_name=architecture.name,
        num_qubits=circuit.num_qubits,
        delta_cz=delta_cz,
        delta_t_us=delta_t,
        delta_fidelity=delta_f,
        runtime_seconds=result.runtime_seconds,
        num_swaps=result.num_swaps,
        num_moves=result.num_moves,
        mapped_makespan_us=mapped_schedule.makespan,
        original_makespan_us=original_schedule.makespan,
        mapped_log_success=mapped_breakdown.log_success_probability,
        original_log_success=original_breakdown.log_success_probability,
        alpha_ratio=alpha_ratio,
    )
