"""Evaluation: success-probability model, Table-1 metrics and experiment harness."""

from .fidelity import (
    FidelityBreakdown,
    analyse,
    fidelity_decrease,
    log_success_probability,
    success_probability,
)
from .metrics import EvaluationMetrics, evaluate, metrics_from_schedules
from .table import (
    DEFAULT_ALPHA_GRID,
    ExperimentSettings,
    benchmark_description_rows,
    format_table,
    run_mode_comparison,
    run_single,
    run_table1,
)

__all__ = [
    "FidelityBreakdown",
    "analyse",
    "success_probability",
    "log_success_probability",
    "fidelity_decrease",
    "EvaluationMetrics",
    "evaluate",
    "metrics_from_schedules",
    "ExperimentSettings",
    "run_single",
    "run_mode_comparison",
    "run_table1",
    "benchmark_description_rows",
    "format_table",
    "DEFAULT_ALPHA_GRID",
]
