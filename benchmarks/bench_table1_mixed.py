"""Table 1a, hardware block (3) "Mixed": near-term hardware without a clear winner.

Regenerates the third block of the paper's Table 1a on the mixed preset
(Table 1c column 3).  This is the paper's headline experiment: the hybrid
mapper may split the circuit between SWAP insertion and shuttling and should
never do worse than the better pure strategy; for the hybrid rows a small
grid of decision ratios α is swept and the best is kept, mirroring the
paper's protocol.
"""

import pytest

from .common import MODES, PAPER_SIZES, record_metrics, run_mapping

HARDWARE = "mixed"

#: Decision ratios swept for the hybrid rows (best kept).
ALPHA_GRID = (0.05, 1.0, 20.0)


def run_hybrid_best_alpha(circuit_name: str):
    best = None
    for alpha in ALPHA_GRID:
        metrics = run_mapping(HARDWARE, circuit_name, "hybrid", alpha=alpha)
        if best is None or metrics.delta_fidelity < best.delta_fidelity:
            best = metrics
    return best


@pytest.mark.benchmark(group="table1a-mixed-hardware")
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("circuit_name", list(PAPER_SIZES))
def test_table1_mixed_hardware(benchmark, circuit_name, mode):
    if mode == "hybrid":
        metrics = benchmark.pedantic(run_hybrid_best_alpha, args=(circuit_name,),
                                     rounds=1, iterations=1)
    else:
        metrics = benchmark.pedantic(run_mapping, args=(HARDWARE, circuit_name, mode),
                                     rounds=1, iterations=1)
    record_metrics(benchmark, metrics)
    if mode == "shuttling_only":
        assert metrics.delta_cz == 0


@pytest.mark.benchmark(group="table1a-mixed-hybrid-vs-pure")
@pytest.mark.parametrize("circuit_name", ["graph", "bn", "gray"])
def test_hybrid_not_worse_than_best_pure_mode(benchmark, circuit_name):
    """The paper's headline claim: hybrid ≤ min(gate-only, shuttling-only) in δF."""

    def run_all():
        shuttle = run_mapping(HARDWARE, circuit_name, "shuttling_only")
        gate = run_mapping(HARDWARE, circuit_name, "gate_only")
        hybrid = run_hybrid_best_alpha(circuit_name)
        return shuttle, gate, hybrid

    shuttle, gate, hybrid = benchmark.pedantic(run_all, rounds=1, iterations=1)
    record_metrics(benchmark, hybrid)
    assert hybrid.delta_fidelity <= min(shuttle.delta_fidelity,
                                        gate.delta_fidelity) + 1e-6
