"""Ablation: decision-ratio sweep on mixed hardware.

The paper reports, for the mixed hardware block, the best decision ratio
``α = α_g / α_s`` per circuit (0.95 ... 1.06) and notes that the optimal ratio
depends on circuit structure.  This benchmark sweeps a ratio grid for two
structurally different circuits (the CZ-only graph state and the
multi-qubit-heavy ``gray`` benchmark) and records the resulting fidelity
decrease per ratio, which is exactly the data needed to study that
correlation.
"""

import pytest

from .common import record_metrics, run_mapping

HARDWARE = "mixed"
ALPHAS = (0.05, 0.5, 1.0, 2.0, 20.0)


@pytest.mark.benchmark(group="ablation-alpha-sweep")
@pytest.mark.parametrize("alpha", ALPHAS)
@pytest.mark.parametrize("circuit_name", ["graph", "gray"])
def test_alpha_sweep(benchmark, circuit_name, alpha):
    metrics = benchmark.pedantic(run_mapping, args=(HARDWARE, circuit_name, "hybrid"),
                                 kwargs={"alpha": alpha}, rounds=1, iterations=1)
    record_metrics(benchmark, metrics)
    # Extremely shuttling-leaning ratios must degenerate to ΔCZ ~ 0.
    if alpha == min(ALPHAS):
        assert metrics.num_swaps <= metrics.num_moves
