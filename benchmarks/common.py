"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates a block of the paper's Table 1 (or an ablation of
one of the design choices listed in DESIGN.md §4) on scaled-down instances so
that the whole suite completes in minutes on a laptop.  The scale factor can
be raised via the ``REPRO_BENCH_SCALE`` environment variable; ``1.0`` reruns
the paper's original 200-qubit / 15x15 configuration (slow in pure Python).

The sizing rules live in :mod:`repro.workloads` (shared with the Table-1
harness and the batch service); compilation goes through the standard
:func:`repro.pipeline.compile_circuit` pipeline, and architectures are cached
in the process-global :data:`repro.service.ARCHITECTURE_CACHE`.

Each benchmark stores the Table-1a columns (ΔCZ, ΔT, δF, mapper runtime) in
``benchmark.extra_info`` so that ``--benchmark-json`` output contains the full
reproduced table, and prints a compact row so the numbers are visible in the
console run as well.
"""

from __future__ import annotations

import os
from typing import Tuple

import pytest

from repro.circuit import QuantumCircuit, decompose_mcx_to_mcz
from repro.circuit.library import get_benchmark
from repro.evaluation import EvaluationMetrics
from repro.hardware import NeutralAtomArchitecture, SiteConnectivity
from repro.mapping import MapperConfig
from repro.pipeline import compile_circuit
from repro.service import ARCHITECTURE_CACHE, ArchitectureSpec
from repro.workloads import (
    PAPER_SIZES,
    build_scaled_architecture,
    lattice_rows_for,
    scaled_register_size,
)
from repro import workloads

#: Fraction of the paper's register sizes the benchmarks run by default.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))

#: Compiler settings (A), (B), (C) of Table 1a.
MODES = ("shuttling_only", "gate_only", "hybrid")


def scaled_size(name: str, scale: float = BENCH_SCALE) -> int:
    """Scaled register size for a named benchmark (minimum 8 qubits)."""
    return scaled_register_size(name, scale, min_size=8)


def scaled_atom_count(scale: float = BENCH_SCALE) -> int:
    return workloads.scaled_atom_count(
        scale, (scaled_size(name, scale) for name in PAPER_SIZES))


def scaled_lattice_rows(scale: float = BENCH_SCALE) -> int:
    return lattice_rows_for(scaled_atom_count(scale))


def bench_spec(hardware: str, scale: float = BENCH_SCALE,
               topology: str = "square") -> ArchitectureSpec:
    """Cacheable spec of the benchmark device at the given scale."""
    return ArchitectureSpec.scaled(hardware, scale, topology=topology)


def build_architecture(hardware: str, scale: float = BENCH_SCALE) -> NeutralAtomArchitecture:
    return build_scaled_architecture(hardware, scale)


def build_circuit(name: str, scale: float = BENCH_SCALE, seed: int = 2024) -> QuantumCircuit:
    circuit = get_benchmark(name, num_qubits=scaled_size(name, scale), seed=seed)
    return decompose_mcx_to_mcz(circuit)


def config_for_mode(mode: str, alpha: float = 1.0) -> MapperConfig:
    return MapperConfig.for_mode(mode, alpha)


def architecture_and_connectivity(hardware: str) -> Tuple[NeutralAtomArchitecture,
                                                          SiteConnectivity]:
    """Cache architectures/connectivity across benchmarks (construction is costly)."""
    return ARCHITECTURE_CACHE.get(bench_spec(hardware))


def run_mapping(hardware: str, circuit_name: str, mode: str,
                alpha: float = 1.0) -> EvaluationMetrics:
    """Compile one benchmark circuit and return the Table-1a metrics."""
    architecture, connectivity = architecture_and_connectivity(hardware)
    circuit = build_circuit(circuit_name)
    context = compile_circuit(circuit, architecture, config_for_mode(mode, alpha),
                              connectivity=connectivity,
                              alpha_ratio=alpha if mode == "hybrid" else None)
    return context.require_metrics()


def record_metrics(benchmark, metrics: EvaluationMetrics) -> None:
    """Attach the reproduced Table-1a columns to the pytest-benchmark record."""
    benchmark.extra_info.update({
        "hardware": metrics.hardware_name,
        "circuit": metrics.circuit_name,
        "mode": metrics.mode,
        "n_qubits": metrics.num_qubits,
        "delta_cz": metrics.delta_cz,
        "delta_t_us": round(metrics.delta_t_us, 2),
        "delta_fidelity": round(metrics.delta_fidelity, 4),
        "mapper_runtime_s": round(metrics.runtime_seconds, 3),
        "num_swaps": metrics.num_swaps,
        "num_moves": metrics.num_moves,
        "alpha": metrics.alpha_ratio,
    })
    print(f"\n[{metrics.hardware_name:9s}] {metrics.circuit_name:10s} {metrics.mode:15s} "
          f"dCZ={metrics.delta_cz:5d}  dT={metrics.delta_t_us:9.1f} us  "
          f"dF={metrics.delta_fidelity:8.4f}  RT={metrics.runtime_seconds:6.2f} s")


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE
