"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates a block of the paper's Table 1 (or an ablation of
one of the design choices listed in DESIGN.md §4) on scaled-down instances so
that the whole suite completes in minutes on a laptop.  The scale factor can
be raised via the ``REPRO_BENCH_SCALE`` environment variable; ``1.0`` reruns
the paper's original 200-qubit / 15x15 configuration (slow in pure Python).

Each benchmark stores the Table-1a columns (ΔCZ, ΔT, δF, mapper runtime) in
``benchmark.extra_info`` so that ``--benchmark-json`` output contains the full
reproduced table, and prints a compact row so the numbers are visible in the
console run as well.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

import pytest

from repro.circuit import QuantumCircuit, decompose_mcx_to_mcz
from repro.circuit.library import get_benchmark
from repro.evaluation import EvaluationMetrics, evaluate
from repro.hardware import NeutralAtomArchitecture, SiteConnectivity
from repro.hardware.presets import preset
from repro.mapping import HybridMapper, MapperConfig

#: Fraction of the paper's register sizes the benchmarks run by default.
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.15"))

#: Benchmark circuits in Table-1 order with their paper sizes.
PAPER_SIZES = {"graph": 200, "qft": 200, "qpe": 200, "bn": 48, "call": 25, "gray": 33}

#: Compiler settings (A), (B), (C) of Table 1a.
MODES = ("shuttling_only", "gate_only", "hybrid")


def scaled_size(name: str, scale: float = BENCH_SCALE) -> int:
    """Scaled register size for a named benchmark (minimum 8 qubits)."""
    return max(8, round(PAPER_SIZES[name] * scale))


def scaled_atom_count(scale: float = BENCH_SCALE) -> int:
    return max(max(scaled_size(name, scale) for name in PAPER_SIZES),
               round(200 * scale))


def scaled_lattice_rows(scale: float = BENCH_SCALE) -> int:
    atoms = scaled_atom_count(scale)
    rows = 4
    while rows * rows <= atoms:
        rows += 1
    return rows + 1


def build_architecture(hardware: str, scale: float = BENCH_SCALE) -> NeutralAtomArchitecture:
    return preset(hardware, lattice_rows=scaled_lattice_rows(scale),
                  num_atoms=scaled_atom_count(scale))


def build_circuit(name: str, scale: float = BENCH_SCALE, seed: int = 2024) -> QuantumCircuit:
    circuit = get_benchmark(name, num_qubits=scaled_size(name, scale), seed=seed)
    return decompose_mcx_to_mcz(circuit)


def config_for_mode(mode: str, alpha: float = 1.0) -> MapperConfig:
    if mode == "shuttling_only":
        return MapperConfig.shuttling_only()
    if mode == "gate_only":
        return MapperConfig.gate_only()
    if mode == "hybrid":
        return MapperConfig.hybrid(alpha)
    raise ValueError(f"unknown mode {mode!r}")


_ARCHITECTURE_CACHE: Dict[str, Tuple[NeutralAtomArchitecture, SiteConnectivity]] = {}


def architecture_and_connectivity(hardware: str) -> Tuple[NeutralAtomArchitecture,
                                                          SiteConnectivity]:
    """Cache architectures/connectivity across benchmarks (construction is costly)."""
    if hardware not in _ARCHITECTURE_CACHE:
        architecture = build_architecture(hardware)
        _ARCHITECTURE_CACHE[hardware] = (architecture, SiteConnectivity(architecture))
    return _ARCHITECTURE_CACHE[hardware]


def run_mapping(hardware: str, circuit_name: str, mode: str,
                alpha: float = 1.0) -> EvaluationMetrics:
    """Map one benchmark circuit and return the Table-1a metrics."""
    architecture, connectivity = architecture_and_connectivity(hardware)
    circuit = build_circuit(circuit_name)
    mapper = HybridMapper(architecture, config_for_mode(mode, alpha),
                          connectivity=connectivity)
    result = mapper.map(circuit)
    return evaluate(circuit, result, architecture, connectivity=connectivity,
                    alpha_ratio=alpha if mode == "hybrid" else None)


def record_metrics(benchmark, metrics: EvaluationMetrics) -> None:
    """Attach the reproduced Table-1a columns to the pytest-benchmark record."""
    benchmark.extra_info.update({
        "hardware": metrics.hardware_name,
        "circuit": metrics.circuit_name,
        "mode": metrics.mode,
        "n_qubits": metrics.num_qubits,
        "delta_cz": metrics.delta_cz,
        "delta_t_us": round(metrics.delta_t_us, 2),
        "delta_fidelity": round(metrics.delta_fidelity, 4),
        "mapper_runtime_s": round(metrics.runtime_seconds, 3),
        "num_swaps": metrics.num_swaps,
        "num_moves": metrics.num_moves,
        "alpha": metrics.alpha_ratio,
    })
    print(f"\n[{metrics.hardware_name:9s}] {metrics.circuit_name:10s} {metrics.mode:15s} "
          f"dCZ={metrics.delta_cz:5d}  dT={metrics.delta_t_us:9.1f} us  "
          f"dF={metrics.delta_fidelity:8.4f}  RT={metrics.runtime_seconds:6.2f} s")


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE
