"""Serving-gateway load generator: requests/sec, hit rate, p50/p95 latency.

Starts a :class:`repro.server.ServingServer` in-process (ephemeral port),
fires an interleaved stream of duplicate + distinct compile requests at it
from concurrent client connections, and records a ``kind:
"serving_throughput"`` case in ``BENCH_scaling.json`` (schema
``repro-bench-scaling/v1`` of :mod:`benchmarks.perf_report`): request
throughput, store-hit/coalescing rate, latency percentiles and compile
counts.  Duplicates are spread through the stream, so the case measures the
compile-once/serve-many path the gateway exists for — the first occurrence
of each distinct circuit compiles, every later occurrence must be a store
hit or coalesce onto an in-flight compile.

With ``--degraded`` the same stream runs under a crashed-worker fault plan
(every distinct compile's worker is crashed once and the supervised pool
re-dispatches it), recording a ``kind: "serving_degraded"`` case alongside
the clean one — the throughput/latency cost of supervision under worker
failure, measured end to end.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py --scale 0.3 \
        --repeats 5 --clients 4 --out BENCH_scaling.json
    PYTHONPATH=src python benchmarks/bench_serving.py --scale 0.3 \
        --degraded --out BENCH_scaling.json
"""

from __future__ import annotations

import argparse
import os
import queue
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

if __package__:
    from .common import bench_spec, scaled_size
    from .perf_report import PAPER_SIZES, merge_case, write_report, _print_case
else:  # executed as a plain script: python benchmarks/bench_serving.py
    _HERE = Path(__file__).resolve().parent
    for entry in (str(_HERE), str(_HERE.parent / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    from common import bench_spec, scaled_size
    from perf_report import PAPER_SIZES, merge_case, write_report, _print_case

from repro.server import ServingClient, ServingGateway  # noqa: E402
from repro.server.__main__ import _start_background_server  # noqa: E402
from repro.service import CompilationTask  # noqa: E402
from repro.store import ResultStore  # noqa: E402
from repro.telemetry import percentile  # noqa: E402

DEFAULT_CIRCUITS = ("qft", "graph")
DEFAULT_HARDWARE = ("mixed",)


def build_request_stream(scale: float, repeats: int,
                         circuits: Sequence[str],
                         hardware_presets: Sequence[str],
                         mode: str) -> List[CompilationTask]:
    """``repeats`` interleaved rounds over the distinct circuit matrix.

    Task ids are unique per request, but every round repeats the same
    circuit structures — which is exactly what the store key dedupes on.
    """
    stream: List[CompilationTask] = []
    for round_index in range(repeats):
        for hardware in hardware_presets:
            for circuit in circuits:
                stream.append(CompilationTask(
                    task_id=f"{hardware}-{circuit}-r{round_index}",
                    architecture=bench_spec(hardware, scale),
                    circuit_name=circuit,
                    num_qubits=scaled_size(circuit, scale),
                    mode=mode,
                ))
    return stream


def run_serving_case(scale: float, *, repeats: int = 5, clients: int = 4,
                     workers: Optional[int] = None, pool: str = "thread",
                     circuits: Sequence[str] = DEFAULT_CIRCUITS,
                     hardware_presets: Sequence[str] = DEFAULT_HARDWARE,
                     mode: str = "hybrid",
                     store_dir: Optional[str] = None,
                     degraded: bool = False) -> Dict:
    """Drive the gateway with the duplicate-heavy stream; return the case.

    With ``degraded=True`` a fault plan arms one worker-crash charge per
    distinct compile against the stream; the supervised pool re-dispatches
    every crashed task, so the case records the rps/p95 cost of crash
    recovery on an otherwise identical workload.
    """
    store_dir = store_dir or tempfile.mkdtemp(prefix="repro-serving-bench-")
    fault_plan = None
    compile_fn = None
    if degraded:
        from repro.resilience import (FaultPlan, FaultSpec, FaultyCompile,
                                      RetryPolicy)

        num_distinct = len(circuits) * len(hardware_presets)
        fault_plan = FaultPlan(
            tempfile.mkdtemp(prefix="repro-serving-bench-ledger-"),
            (FaultSpec("crash", "worker", times=num_distinct),))
        compile_fn = FaultyCompile(fault_plan)
    gateway = ServingGateway(
        ResultStore(store_dir, fault_plan=fault_plan), max_workers=workers,
        pool=pool, compile_fn=compile_fn)
    server_thread, port = _start_background_server(gateway, "127.0.0.1")

    stream = build_request_stream(scale, repeats, circuits, hardware_presets,
                                  mode)
    pending: "queue.Queue[CompilationTask]" = queue.Queue()
    for task in stream:
        pending.put(task)

    latencies: List[float] = []
    failures: List[str] = []
    lock = threading.Lock()

    def client_worker() -> None:
        with ServingClient("127.0.0.1", port) as client:
            while True:
                try:
                    task = pending.get_nowait()
                except queue.Empty:
                    return
                tick = time.perf_counter()
                response = client.compile_task(task)
                elapsed = time.perf_counter() - tick
                with lock:
                    latencies.append(elapsed)
                    if not response.ok:
                        failures.append(f"{task.task_id}: {response.error}")

    start = time.perf_counter()
    threads = [threading.Thread(target=client_worker)
               for _ in range(max(1, min(clients, len(stream))))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    with ServingClient("127.0.0.1", port) as client:
        stats = client.stats()
        client.shutdown()
    server_thread.join(timeout=10)

    gateway_stats = stats["gateway"]
    served_without_compile = (gateway_stats["store_hits"]
                              + gateway_stats["coalesced"])
    num_requests = len(stream)
    # Record the *effective* topologies of the built specs, not a literal:
    # the "zoned" hardware preset normalises its topology, and mislabelled
    # cases would collide with the square matrix on regeneration.
    effective = sorted({task.architecture.topology for task in stream})
    supervision = stats.get("supervision") or {}
    return {
        "kind": "serving_degraded" if degraded else "serving_throughput",
        "faults_injected": fault_plan.fired() if fault_plan is not None else 0,
        "pool_crashes": supervision.get("crashes", 0),
        "pool_retries": supervision.get("retries", 0),
        "hardware": "+".join(hardware_presets),
        "circuit": "+".join(circuits),
        "mode": mode,
        "topology": "+".join(effective),
        "scale": scale,
        "num_requests": num_requests,
        "distinct_requests": len(circuits) * len(hardware_presets),
        "num_clients": len(threads),
        "num_workers": workers,
        "pool": pool,
        "available_cpus": os.cpu_count(),
        "wall_seconds": round(wall, 4),
        "requests_per_second": round(num_requests / wall, 4) if wall > 0 else 0.0,
        "hit_rate": round(served_without_compile / num_requests, 4),
        "store_hits": gateway_stats["store_hits"],
        "coalesced": gateway_stats["coalesced"],
        "num_compiles": gateway_stats["compiles"],
        # Client-observed failures only: every gateway-side failure already
        # surfaces as a failed client response, so also adding
        # ``gateway_stats["failures"]`` double-counted each one.
        "num_failures": len(failures),
        "gateway_failures": gateway_stats["failures"],
        "p50_ms": round(percentile(latencies, 0.50) * 1000, 2),
        "p95_ms": round(percentile(latencies, 0.95) * 1000, 2),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--out", default="BENCH_scaling.json")
    parser.add_argument("--repeats", type=int, default=5,
                        help="rounds over the distinct circuit matrix "
                             "(duplication factor; default 5)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client connections (default 4)")
    parser.add_argument("--workers", type=int, default=None,
                        help="gateway worker pool size (default: CPU count)")
    parser.add_argument("--pool", choices=("thread", "process"),
                        default="thread",
                        help="gateway pool kind (default thread: accurate "
                             "on 1-core hosts, no fork overhead in the "
                             "latency percentiles)")
    parser.add_argument("--circuits", nargs="*", default=list(DEFAULT_CIRCUITS))
    parser.add_argument("--hardware", nargs="*", default=list(DEFAULT_HARDWARE))
    parser.add_argument("--mode", default="hybrid")
    parser.add_argument("--store-dir", default=None)
    parser.add_argument("--degraded", action="store_true",
                        help="run under a crashed-worker fault plan and "
                             "record a serving_degraded case instead")
    args = parser.parse_args(argv)

    unknown = [name for name in args.circuits if name not in PAPER_SIZES]
    if unknown:
        parser.error(f"unknown circuit(s) {unknown}; "
                     f"choose from {sorted(PAPER_SIZES)}")
    if args.scale <= 0:
        parser.error("--scale must be positive")
    if args.repeats < 1 or args.clients < 1:
        parser.error("--repeats and --clients must be at least 1")

    case = run_serving_case(args.scale, repeats=args.repeats,
                            clients=args.clients, workers=args.workers,
                            pool=args.pool, circuits=args.circuits,
                            hardware_presets=args.hardware, mode=args.mode,
                            store_dir=args.store_dir, degraded=args.degraded)
    report = merge_case(args.out, case, args.scale)
    write_report(report, args.out)
    _print_case(case)
    print(f"wrote {args.out}")
    return 0 if case["num_failures"] == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
