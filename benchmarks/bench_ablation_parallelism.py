"""Ablation: AOD-parallelism weight ``w_t`` of the shuttling cost (Eq. 4).

``w_t`` trades the most distance-effective move against the move that shares
an AOD batch with recent moves.  The benchmark maps the graph-state circuit
in shuttling-only mode for several weights on the shuttling-optimised
hardware and records the resulting move count and circuit-time overhead ΔT —
larger weights should never increase ΔT substantially, and typically reduce
it by packing more moves per batch.
"""

import pytest

from repro.evaluation import evaluate
from repro.mapping import HybridMapper, MapperConfig

from .common import architecture_and_connectivity, build_circuit, record_metrics

WEIGHTS = (0.0, 0.1, 1.0, 5.0)


def run_with_time_weight(weight: float):
    architecture, connectivity = architecture_and_connectivity("shuttling")
    circuit = build_circuit("graph")
    config = MapperConfig.shuttling_only(time_weight=weight)
    mapper = HybridMapper(architecture, config, connectivity=connectivity)
    result = mapper.map(circuit)
    return evaluate(circuit, result, architecture, connectivity=connectivity)


@pytest.mark.benchmark(group="ablation-parallelism-weight")
@pytest.mark.parametrize("weight", WEIGHTS)
def test_parallelism_weight(benchmark, weight):
    metrics = benchmark.pedantic(run_with_time_weight, args=(weight,),
                                 rounds=1, iterations=1)
    benchmark.extra_info["time_weight"] = weight
    record_metrics(benchmark, metrics)
    assert metrics.delta_cz == 0
