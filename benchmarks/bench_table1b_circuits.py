"""Table 1b: benchmark circuit descriptions (n, nCZ, nC2Z, nC3Z).

Regenerates the gate-count statistics of the paper's benchmark set.  At full
scale (``REPRO_BENCH_SCALE=1``) the reversible benchmarks reproduce the
paper's per-arity counts exactly (they are generated from those profiles);
the algorithmic benchmarks reproduce the textbook formulas (e.g. QFT has
``n (n-1) / 2`` controlled-phase gates).  The benchmark itself times circuit
generation plus native-gate decomposition, which is also the preprocessing
cost of every mapping run.
"""

import pytest

from repro.circuit.library import REVERSIBLE_PROFILES

from .common import BENCH_SCALE, PAPER_SIZES, build_circuit, scaled_size


@pytest.mark.benchmark(group="table1b-benchmark-descriptions")
@pytest.mark.parametrize("circuit_name", list(PAPER_SIZES))
def test_table1b_descriptions(benchmark, circuit_name):
    circuit = benchmark.pedantic(build_circuit, args=(circuit_name,),
                                 rounds=1, iterations=1)
    arity = circuit.count_by_arity()
    row = {
        "name": circuit_name,
        "n": circuit.num_qubits,
        "nCZ": arity.get(2, 0),
        "nC2Z": arity.get(3, 0),
        "nC3Z": arity.get(4, 0),
    }
    benchmark.extra_info.update(row)
    print(f"\n[table1b] {row['name']:10s} n={row['n']:4d} nCZ={row['nCZ']:6d} "
          f"nC2Z={row['nC2Z']:5d} nC3Z={row['nC3Z']:5d}")

    assert circuit.num_qubits == scaled_size(circuit_name)
    if circuit_name == "qft":
        n = circuit.num_qubits
        assert row["nCZ"] == n * (n - 1) // 2
    if circuit_name in REVERSIBLE_PROFILES and abs(BENCH_SCALE - 1.0) < 1e-9:
        _base, profile = REVERSIBLE_PROFILES[circuit_name]
        assert row["nCZ"] == profile.get(2, 0)
        assert row["nC2Z"] == profile.get(3, 0)
        assert row["nC3Z"] == profile.get(4, 0)
    if circuit_name in ("bn", "call"):
        assert row["nC2Z"] > 0
