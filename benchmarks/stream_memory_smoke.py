"""Large-circuit streaming-stitcher memory smoke.

Drains a 1000+-qubit synthetic circuit (at ``--scale`` 0.6, the default)
through the speculative streaming stitcher with ``retain=False`` while an
incremental :class:`StreamValidator` replays every yielded operation.  The
run fails (non-zero exit) if

* the stream replays illegally or is incomplete,
* the live slice-result window exceeds the speculation bound
  (``workers + 1``), or
* the process peak RSS blows ``--max-rss-mb`` — the bounded-memory claim
  the streaming stitcher exists to make.

CI runs this inside the shard-differential job; the JSON summary
(``--out``) is uploaded as an artifact so a red run ships its numbers.

Usage::

    PYTHONPATH=src python benchmarks/stream_memory_smoke.py \
        --scale 0.6 --max-rss-mb 768 --out stream-memory-smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys

from perf_report import peak_rss_mb

from repro.circuit.library.random_circuits import local_window_circuit
from repro.hardware import SiteConnectivity
from repro.hardware.presets import mixed
from repro.mapping import MapperConfig, ShardedRouter, StreamValidator
import repro.mapping.shard as shard_module
from repro.workloads import lattice_rows_for

#: Qubit count at scale 1.0; scale 0.6 lands on ~1024 qubits, the
#: tentpole's "1000+-qubit synthetic stream" sizing.
FULL_SCALE_QUBITS = 1707
#: Entangling-gate budget per qubit (local-window workload density).
GATES_PER_QUBIT = 0.6


def run_smoke(scale: float, workers: int) -> dict:
    num_qubits = max(256, round(FULL_SCALE_QUBITS * scale))
    num_gates = max(128, round(num_qubits * GATES_PER_QUBIT))
    num_atoms = num_qubits + max(64, num_qubits // 16)
    architecture = mixed(lattice_rows=lattice_rows_for(num_atoms),
                         num_atoms=num_atoms)
    connectivity = SiteConnectivity(architecture)
    circuit = local_window_circuit(num_qubits, num_gates, window=4, seed=7)
    config = MapperConfig.sharded(workers=workers, shard_min_slice=48)

    # 1-CPU CI runners: thread workers keep the speculative scheduler
    # exercised without fork overhead (the stream is pool-kind independent).
    shard_module._POOL_KIND = "thread"
    router = ShardedRouter(architecture, config, connectivity=connectivity)
    stream = router.stream(circuit, retain=False)
    if stream is None:
        return {"error": "circuit did not partition into multiple slices"}

    validator = StreamValidator(circuit, architecture,
                                stream.initial_qubit_map,
                                stream.initial_atom_map,
                                connectivity=connectivity)
    num_ops = 0
    for op in stream:
        validator.check(op)
        num_ops += 1
    violations = validator.finish(stream.final_qubit_map,
                                  stream.final_atom_map)

    stats = stream.stats
    return {
        "scale": scale,
        "num_qubits": num_qubits,
        "num_gates": len(circuit),
        "num_atoms": num_atoms,
        "num_ops": num_ops,
        "num_slices": stats["num_slices"],
        "tree_depth": stats["tree_depth"],
        "scheduler": stats["scheduler"],
        "workers": workers,
        "max_live_results": stats["max_live_results"],
        "seeded_slices": stats["seeded_slices"],
        "seeded_fallbacks": stats["seeded_fallbacks"],
        "seam_gates": stats["seam_gates"],
        "result_retained": stream.result is not None,
        "replay_violations": violations[:10],
        "peak_rss_mb": peak_rss_mb(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.6,
                        help="workload scale; 0.6 = ~1024 qubits (default)")
    parser.add_argument("--workers", type=int, default=2,
                        help="speculative shard workers (default 2)")
    parser.add_argument("--max-rss-mb", type=float, default=768.0,
                        help="peak-RSS ceiling in MiB (default 768)")
    parser.add_argument("--out", default=None,
                        help="write the JSON summary to this path")
    args = parser.parse_args(argv)

    summary = run_smoke(args.scale, args.workers)
    failures = []
    if "error" in summary:
        failures.append(summary["error"])
    else:
        if summary["replay_violations"]:
            failures.append(
                f"stream replay violations: {summary['replay_violations']}")
        if summary["result_retained"]:
            failures.append("retain=False still built a MappingResult")
        if summary["max_live_results"] > args.workers + 1:
            failures.append(
                f"live results {summary['max_live_results']} exceed the "
                f"speculation window {args.workers + 1}")
        rss = summary["peak_rss_mb"]
        if rss is None:
            failures.append("resource module unavailable; peak RSS unknown")
        elif rss > args.max_rss_mb:
            failures.append(
                f"peak RSS {rss} MiB exceeds the {args.max_rss_mb} MiB cap")
    summary["failures"] = failures

    text = json.dumps(summary, indent=2, sort_keys=True)
    print(text)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
