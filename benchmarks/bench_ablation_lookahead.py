"""Ablation: lookahead weight ``w_l`` of the gate-based cost function (Eq. 2).

DESIGN.md lists the lookahead weighting as a design choice worth ablating:
``w_l = 0`` ignores the lookahead layer entirely, while large values let
future gates dominate the SWAP selection.  The benchmark maps the QFT (whose
dense all-to-all structure benefits most from lookahead) in gate-only mode
for several weights and records the inserted SWAP count and fidelity
decrease.
"""

import pytest

from repro.evaluation import evaluate
from repro.mapping import HybridMapper, MapperConfig

from .common import architecture_and_connectivity, build_circuit, record_metrics

WEIGHTS = (0.0, 0.1, 0.5, 1.0)


def run_with_lookahead_weight(weight: float):
    architecture, connectivity = architecture_and_connectivity("gate")
    circuit = build_circuit("qft")
    config = MapperConfig.gate_only(lookahead_weight=weight)
    mapper = HybridMapper(architecture, config, connectivity=connectivity)
    result = mapper.map(circuit)
    return evaluate(circuit, result, architecture, connectivity=connectivity)


@pytest.mark.benchmark(group="ablation-lookahead-weight")
@pytest.mark.parametrize("weight", WEIGHTS)
def test_lookahead_weight(benchmark, weight):
    metrics = benchmark.pedantic(run_with_lookahead_weight, args=(weight,),
                                 rounds=1, iterations=1)
    benchmark.extra_info["lookahead_weight"] = weight
    record_metrics(benchmark, metrics)
    assert metrics.delta_cz == 3 * metrics.num_swaps
