#!/usr/bin/env python3
"""Standalone regeneration of the paper's Table 1.

Runs the three compiler settings on every benchmark circuit for one (or all)
hardware presets and prints the resulting Table-1a block, plus the Table-1b
benchmark descriptions and the Table-1c hardware settings on request.

Examples
--------
Regenerate the mixed-hardware block at 20% of the paper's scale::

    python benchmarks/table1.py --hardware mixed --scale 0.2

Regenerate all three blocks and write a CSV next to the console output::

    python benchmarks/table1.py --hardware all --csv table1.csv

Print the benchmark descriptions (Table 1b) and hardware settings (Table 1c)::

    python benchmarks/table1.py --describe --hardware-table
"""

from __future__ import annotations

import argparse
import csv
import sys
from typing import List

from repro.evaluation.table import (
    DEFAULT_ALPHA_GRID,
    ExperimentSettings,
    benchmark_description_rows,
    format_table,
    run_table1,
)
from repro.hardware.presets import PRESET_NAMES, preset


def parse_arguments(argv: List[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--hardware", default="mixed",
                        choices=list(PRESET_NAMES) + ["all"],
                        help="hardware preset block of Table 1a to regenerate")
    parser.add_argument("--scale", type=float, default=0.2,
                        help="fraction of the paper's register sizes (1.0 = full scale)")
    parser.add_argument("--circuits", nargs="*", default=None,
                        help="subset of benchmark circuits (default: all six)")
    parser.add_argument("--alphas", nargs="*", type=float, default=None,
                        help="decision-ratio grid for the hybrid rows")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--csv", default=None, help="also write the rows to this CSV file")
    parser.add_argument("--describe", action="store_true",
                        help="print the Table 1b benchmark descriptions")
    parser.add_argument("--hardware-table", action="store_true",
                        help="print the Table 1c hardware settings")
    return parser.parse_args(argv)


def print_hardware_table() -> None:
    print("Table 1c — hardware settings")
    keys = ("r_int", "F_cz", "F_1q", "F_shuttle", "shuttle_speed_um_per_us",
            "t_act_us", "t_deact_us")
    header = f"{'parameter':<26}" + "".join(f"{name:>12}" for name in PRESET_NAMES)
    print(header)
    print("-" * len(header))
    summaries = {name: preset(name).summary() for name in PRESET_NAMES}
    for key in keys:
        row = f"{key:<26}" + "".join(f"{summaries[name][key]:>12}" for name in PRESET_NAMES)
        print(row)
    print()


def print_descriptions(settings: ExperimentSettings) -> None:
    print("Table 1b — benchmark descriptions")
    print(f"{'name':<10}{'n':>6}{'nCZ':>8}{'nC2Z':>8}{'nC3Z':>8}")
    for row in benchmark_description_rows(settings):
        print(f"{row['name']:<10}{row['n']:>6}{row['nCZ']:>8}{row['nC2Z']:>8}{row['nC3Z']:>8}")
    print()


def run_block(hardware: str, args: argparse.Namespace, csv_rows: List[dict]) -> None:
    settings = ExperimentSettings(
        hardware=hardware,
        circuits=tuple(args.circuits) if args.circuits else ExperimentSettings().circuits,
        scale=args.scale,
        alpha_grid=tuple(args.alphas) if args.alphas else DEFAULT_ALPHA_GRID,
        seed=args.seed,
    )
    rows = run_table1(settings)
    print(format_table(rows, hardware))
    print()
    for row in rows:
        for mode_key, metrics in row.items():
            csv_rows.append(metrics.as_row())


def main(argv: List[str]) -> int:
    args = parse_arguments(argv)
    if args.hardware_table:
        print_hardware_table()
    if args.describe:
        settings = ExperimentSettings(scale=args.scale)
        print_descriptions(settings)
    csv_rows: List[dict] = []
    hardware_list = list(PRESET_NAMES) if args.hardware == "all" else [args.hardware]
    for hardware in hardware_list:
        run_block(hardware, args, csv_rows)
    if args.csv and csv_rows:
        with open(args.csv, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(csv_rows[0]))
            writer.writeheader()
            writer.writerows(csv_rows)
        print(f"wrote {len(csv_rows)} rows to {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
