"""Table 1a, hardware block (2) "Gate": gate-optimised hardware.

Regenerates the second block of the paper's Table 1a on the gate-optimised
preset (Table 1c column 2).  Expected shape: gate-based mapping and the
hybrid mapper coincide and achieve a smaller fidelity decrease than
shuttling-only, while shuttling-only still has ΔCZ = 0 but a far larger ΔT.
"""

import pytest

from .common import MODES, PAPER_SIZES, record_metrics, run_mapping

HARDWARE = "gate"


@pytest.mark.benchmark(group="table1a-gate-hardware")
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("circuit_name", list(PAPER_SIZES))
def test_table1_gate_hardware(benchmark, circuit_name, mode):
    metrics = benchmark.pedantic(run_mapping, args=(HARDWARE, circuit_name, mode),
                                 rounds=1, iterations=1)
    record_metrics(benchmark, metrics)
    if mode == "shuttling_only":
        assert metrics.delta_cz == 0
        assert metrics.num_swaps == 0
