"""Perf-report helper: track compile wall time per stage across scales.

Emits ``BENCH_scaling.json`` so the performance trajectory of the mapper is
recorded from PR 1 onward (schema ``repro-bench-scaling/v1``):

.. code-block:: json

    {
      "schema": "repro-bench-scaling/v1",
      "created_unix": 1753000000.0,
      "scale": 0.3,
      "cases": [
        {
          "hardware": "gate", "circuit": "qft", "mode": "hybrid",
          "topology": "square",      // trap topology (square/rectangular/zoned)
          "scale": 0.3, "num_qubits": 60,
          "wall_seconds": 1.22,      // full run: pipeline compile (map + evaluate)
          "mapper_seconds": 1.19,    // HybridMapper.map wall time (RT column)
          "stage_seconds": {         // accumulated inside the routing loop
            "execute": 0.05, "decide": 0.11,
            "gate_route": 0.98, "shuttle_route": 0.0
          },
          "pass_seconds": {          // per pipeline pass (decompose/.../evaluate)
            "routing": 1.19, "schedule": 0.02, "evaluate": 0.01
          },
          "num_swaps": 46, "num_moves": 0,
          "delta_cz": 138, "delta_t_us": 1234.5,
          "speedup_vs_baseline": 11.5   // present only with --baseline
        },
        {
          "kind": "batch_throughput",   // service-layer case (--batch)
          "hardware": "gate+mixed+shuttling", "circuit": "qft+graph",
          "mode": "hybrid", "scale": 0.3, "num_tasks": 6, "num_workers": 4,
          "available_cpus": 8,
          "serial_seconds": 9.7, "batch_seconds": 4.4,
          "serial_circuits_per_second": 0.62, "batch_circuits_per_second": 1.36,
          "throughput_speedup": 2.2, "num_failures": 0
          // plus "cpu_caveat" when available_cpus cannot exercise the workers
        },
        {
          "kind": "shard_routing",      // serial-vs-sharded comparison (--shard)
          "hardware": "mixed", "circuit": "qft", "mode": "hybrid",
          "scale": 0.3, "num_qubits": 60, "available_cpus": 1,
          "shard_workers": 1, "scheduler": "chained", "num_slices": 28,
          "seed_snapshots": true, "hierarchical_partition": true,
          "serial_seconds": 3.2, "sharded_seconds": 0.61,
          "shard_speedup": 5.2, "shard_overhead_pct": -80.6,
          "serial_moves": 493, "sharded_moves": 651,
          "peak_rss_mb": 182.4,         // ru_maxrss high-water after the case
          "speculative_seam_probe": {   // seeded-vs-unseeded seam quality
            "pool_kind": "thread", "shard_workers": 2,
            "unseeded": { "seam_gate_ratio": 0.95, "seam_gates": 1734 },
            "seeded":   { "seam_gate_ratio": 0.39, "seam_gates": 711,
                          "seeded_hit_ratio": 0.61, "repair_moves": 399 },
            "seam_ratio_drop": 2.44
          }
          // plus "cpu_caveat" on single-core hosts: the chained scheduler's
          // speedup is real but the speculative multi-core figure is not
          // measurable there
        },
        {
          "kind": "serving_throughput",  // gateway case (benchmarks/bench_serving.py)
          "hardware": "mixed", "circuit": "qft+graph", "mode": "hybrid",
          "scale": 0.3, "num_requests": 10, "distinct_requests": 2,
          "requests_per_second": 2.6, "hit_rate": 0.8,
          "store_hits": 7, "coalesced": 1, "num_compiles": 2,
          "p50_ms": 45.1, "p95_ms": 3400.2, "num_failures": 0
        }
      ]
    }

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py --scale 0.3 \
        --out BENCH_scaling.json [--baseline benchmarks/BENCH_seed_baseline.json]
    PYTHONPATH=src python benchmarks/perf_report.py --batch --workers 4 \
        --scale 0.3 --out BENCH_scaling.json   # append a throughput case
    PYTHONPATH=src python benchmarks/perf_report.py --topology zoned \
        --hardware mixed --scale 0.3           # zoned-topology matrix
    PYTHONPATH=src python benchmarks/perf_report.py --shard \
        --hardware mixed --circuits qft --scale 0.3  # shard-routing case
    PYTHONPATH=src python benchmarks/perf_report.py --profile \
        --hardware mixed --circuits qft --scale 0.12 # cProfile the routing

``--baseline`` points at a previous report (e.g. the committed seed
baseline); matching cases gain a ``speedup_vs_baseline`` field computed from
``wall_seconds``.  The pytest entry point is ``benchmarks/bench_scaling.py``,
which runs the same matrix (and a smoke-scale batch case) and emits the same
file; ``python benchmarks/bench_scaling.py --batch`` is a shorthand for the
batch mode here.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

try:  # POSIX-only; absent on some platforms
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX fallback
    _resource = None

if __package__:
    from .common import (PAPER_SIZES, bench_spec, build_circuit,
                         config_for_mode, scaled_size)
else:  # executed as a plain script: python benchmarks/perf_report.py
    _HERE = Path(__file__).resolve().parent
    for entry in (str(_HERE), str(_HERE.parent / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    from common import (PAPER_SIZES, bench_spec, build_circuit,
                        config_for_mode, scaled_size)

from repro.pipeline import compile_circuit
from repro.service import ARCHITECTURE_CACHE, BatchCompiler, CompilationTask

SCHEMA = "repro-bench-scaling/v1"
DEFAULT_CIRCUITS: Tuple[str, ...] = ("qft", "graph")
DEFAULT_HARDWARE: Tuple[str, ...] = ("gate", "mixed", "shuttling")
DEFAULT_MODES: Tuple[str, ...] = ("hybrid",)


def _architecture(hardware: str, scale: float, topology: str = "square"):
    return ARCHITECTURE_CACHE.get(bench_spec(hardware, scale, topology))


def peak_rss_mb() -> Optional[float]:
    """Process-wide peak resident set size in MiB.

    ``ru_maxrss`` is a monotone high-water mark over the whole process
    lifetime (kibibytes on Linux, bytes on macOS), so a case records the
    peak *after* it ran — an upper bound on its own footprint, and across a
    whole report the field shows which case pushed the mark up.  ``None``
    where the ``resource`` module is unavailable; consumers (including
    ``_preserved_cases``) must tolerate cases lacking the field, which also
    keeps reports recorded before the field existed loadable.
    """
    if _resource is None:  # pragma: no cover - non-POSIX fallback
        return None
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    divisor = 1024.0 * 1024.0 if sys.platform == "darwin" else 1024.0
    return round(peak / divisor, 1)


def run_case(hardware: str, circuit_name: str, mode: str, scale: float,
             *, alpha: float = 1.0, topology: str = "square") -> Dict:
    """Run one benchmark configuration and return its report case."""
    architecture, connectivity = _architecture(hardware, scale, topology)
    circuit = build_circuit(circuit_name, scale)
    config = config_for_mode(mode, alpha)
    start = time.perf_counter()
    context = compile_circuit(circuit, architecture, config,
                              connectivity=connectivity,
                              alpha_ratio=alpha if mode == "hybrid" else None)
    wall = time.perf_counter() - start
    result = context.require_result()
    metrics = context.require_metrics()
    case = {
        "hardware": hardware,
        "circuit": circuit_name,
        "mode": mode,
        "topology": architecture.topology.kind,
        "cross_round_cache": config.cross_round_cache,
        "chain_kernel": config.chain_kernel,
        "shard_routing": config.shard_routing,
        "scale": scale,
        "num_qubits": scaled_size(circuit_name, scale),
        "available_cpus": os.cpu_count(),
        "wall_seconds": round(wall, 4),
        "mapper_seconds": round(result.runtime_seconds, 4),
        "stage_seconds": {stage: round(seconds, 4)
                          for stage, seconds in result.stage_seconds.items()},
        "pass_seconds": {name: round(seconds, 4)
                         for name, seconds in context.pass_seconds.items()},
        "num_swaps": result.num_swaps,
        "num_moves": result.num_moves,
        "delta_cz": metrics.delta_cz,
        "delta_t_us": round(metrics.delta_t_us, 2),
    }
    rss = peak_rss_mb()
    if rss is not None:
        case["peak_rss_mb"] = rss
    caveat = cpu_caveat(case)
    if caveat:
        case["cpu_caveat"] = caveat
    return case


def _speculative_seam_probe(architecture, connectivity, circuit,
                            base_config, alpha_ratio) -> Dict:
    """Seeded-vs-unseeded seam quality of the speculative scheduler.

    Runs the speculative stitcher twice over a thread pool (two workers —
    the stream is worker-count and pool-kind independent, and threads keep
    the probe meaningful on 1-CPU hosts where the default shard case falls
    back to the chained scheduler): once with ``seed_snapshots=False`` (the
    PR 7 stitching: every slice replays against the drifted merged state)
    and once with ``seed_snapshots=True`` (forecast-seeded workers plus the
    repair pass).  Records ``seam_gates`` / ``seam_gate_ratio`` for both so
    the before/after of predictive seeding is committed evidence, not a
    claim.
    """
    import repro.mapping.shard as shard_module

    probe: Dict[str, object] = {"pool_kind": "thread", "shard_workers": 2}
    previous = shard_module._POOL_KIND
    shard_module._POOL_KIND = "thread"
    try:
        for label, seeded in (("unseeded", False), ("seeded", True)):
            config = base_config.with_overrides(
                shard_routing=True, shard_workers=2, seed_snapshots=seeded)
            context = compile_circuit(circuit, architecture, config,
                                      connectivity=connectivity,
                                      alpha_ratio=alpha_ratio)
            stats = context.require_result().shard_stats
            probe[label] = {
                "seed_snapshots": seeded,
                "seam_gates": stats.get("seam_gates", 0),
                "seam_gate_ratio": stats.get("seam_gate_ratio", 0.0),
                "seeded_hit_ratio": stats.get("seeded_hit_ratio", 0.0),
                "repair_moves": stats.get("repair_moves", 0),
                "num_moves": context.require_result().num_moves,
            }
    finally:
        shard_module._POOL_KIND = previous
    unseeded = probe["unseeded"]["seam_gate_ratio"]  # type: ignore[index]
    seeded = probe["seeded"]["seam_gate_ratio"]  # type: ignore[index]
    probe["seam_ratio_drop"] = (round(unseeded / seeded, 2)
                                if seeded > 0 else None)
    return probe


def run_shard_case(hardware: str, circuit_name: str, mode: str, scale: float,
                   *, alpha: float = 1.0, topology: str = "square",
                   workers: Optional[int] = None,
                   seam_probe: bool = True) -> Dict:
    """Route one circuit serially and sharded; record the comparison.

    ``workers=None`` auto-sizes: ``min(available_cpus, 4)`` on a multi-core
    host (speculative scheduler, real parallelism), ``1`` on a single core
    (chained scheduler — exact, no seams, and still typically *faster* than
    serial because each slice is a much smaller routing subproblem).

    With ``seam_probe`` the case additionally records the speculative
    scheduler's seeded-vs-unseeded seam quality
    (:func:`_speculative_seam_probe`) — two extra sharded compiles.
    """
    architecture, connectivity = _architecture(hardware, scale, topology)
    circuit = build_circuit(circuit_name, scale)
    cpus = os.cpu_count() or 1
    if workers is None:
        workers = min(cpus, 4) if cpus >= 2 else 1
    serial_config = config_for_mode(mode, alpha)
    sharded_config = serial_config.with_overrides(shard_routing=True,
                                                 shard_workers=workers)
    alpha_ratio = alpha if mode == "hybrid" else None

    start = time.perf_counter()
    serial = compile_circuit(circuit, architecture, serial_config,
                             connectivity=connectivity, alpha_ratio=alpha_ratio)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    sharded = compile_circuit(circuit, architecture, sharded_config,
                              connectivity=connectivity,
                              alpha_ratio=alpha_ratio)
    sharded_wall = time.perf_counter() - start

    serial_result = serial.require_result()
    sharded_result = sharded.require_result()
    shard_stats = sharded_result.shard_stats
    speedup = serial_wall / sharded_wall if sharded_wall > 0 else 0.0
    case = {
        "kind": "shard_routing",
        "hardware": hardware,
        "circuit": circuit_name,
        "mode": mode,
        "topology": architecture.topology.kind,
        "scale": scale,
        "num_qubits": scaled_size(circuit_name, scale),
        "available_cpus": cpus,
        "shard_workers": workers,
        "scheduler": shard_stats.get("scheduler", "serial-fallback"),
        "seed_snapshots": sharded_config.seed_snapshots,
        "hierarchical_partition": sharded_config.hierarchical_partition,
        "num_slices": shard_stats.get("num_slices", 1),
        "serial_seconds": round(serial_wall, 4),
        "sharded_seconds": round(sharded_wall, 4),
        "shard_speedup": round(speedup, 2),
        "shard_overhead_pct": round((sharded_wall - serial_wall)
                                    / serial_wall * 100.0, 1)
        if serial_wall > 0 else 0.0,
        "serial_swaps": serial_result.num_swaps,
        "sharded_swaps": sharded_result.num_swaps,
        "serial_moves": serial_result.num_moves,
        "sharded_moves": sharded_result.num_moves,
        "serial_delta_cz": serial.require_metrics().delta_cz,
        "sharded_delta_cz": sharded.require_metrics().delta_cz,
    }
    if seam_probe:
        case["speculative_seam_probe"] = _speculative_seam_probe(
            architecture, connectivity, circuit, serial_config, alpha_ratio)
    rss = peak_rss_mb()
    if rss is not None:
        case["peak_rss_mb"] = rss
    caveat = cpu_caveat(case)
    if caveat:
        case["cpu_caveat"] = caveat
    return case


def run_telemetry_overhead_case(scale: float, *, hardware: str = "shuttling",
                                circuit_name: str = "qft",
                                mode: str = "shuttling_only",
                                topology: str = "square",
                                rounds: int = 3) -> Dict:
    """Measure the cost of the telemetry registry on the compile hot path.

    Compiles the shuttle_route-dominated configuration (``qft`` in
    shuttling mode — the hottest instrumented loop) ``rounds`` times with
    the process-global registry disabled and ``rounds`` times enabled,
    recording the best wall time of each leg (best-of-N discards scheduler
    noise).  The legs are interleaved round by round — running one leg to
    completion before the other lets heap growth and CPU-frequency drift
    within the process bias whichever leg runs second.  The case also
    asserts the telemetry-never-decides contract operationally: both legs
    must produce byte-identical op-stream digests.
    """
    from repro.telemetry import get_registry

    architecture, connectivity = _architecture(hardware, scale, topology)
    circuit = build_circuit(circuit_name, scale)
    config = config_for_mode(mode, 1.0)
    alpha_ratio = 1.0 if mode == "hybrid" else None
    registry = get_registry()
    best: Dict[str, float] = {}
    digests: Dict[str, str] = {}
    previous = registry.enabled
    try:
        for _ in range(rounds):
            for label, enabled in (("disabled", False), ("enabled", True)):
                registry.enabled = enabled
                start = time.perf_counter()
                context = compile_circuit(circuit, architecture, config,
                                          connectivity=connectivity,
                                          alpha_ratio=alpha_ratio)
                wall = time.perf_counter() - start
                best[label] = min(best.get(label, wall), wall)
                digests[label] = (context.require_result()
                                  .op_stream_digest()["sha256"])
    finally:
        registry.enabled = previous
    overhead_pct = ((best["enabled"] - best["disabled"])
                    / best["disabled"] * 100.0 if best["disabled"] > 0 else 0.0)
    return {
        "kind": "telemetry_overhead",
        "hardware": hardware,
        "circuit": circuit_name,
        "mode": mode,
        "topology": architecture.topology.kind,
        "scale": scale,
        "num_qubits": scaled_size(circuit_name, scale),
        "rounds": rounds,
        "disabled_seconds": round(best["disabled"], 4),
        "enabled_seconds": round(best["enabled"], 4),
        "telemetry_overhead_pct": round(overhead_pct, 2),
        "digests_identical": digests["enabled"] == digests["disabled"],
    }


def batch_tasks(scale: float,
                circuits: Sequence[str] = DEFAULT_CIRCUITS,
                hardware_presets: Sequence[str] = DEFAULT_HARDWARE,
                mode: str = "hybrid", alpha: float = 1.0,
                topology: str = "square") -> List[CompilationTask]:
    """The benchmark matrix as independent service tasks."""
    return [
        CompilationTask(
            task_id=f"{hardware}-{circuit}-{mode}",
            architecture=bench_spec(hardware, scale, topology),
            circuit_name=circuit,
            num_qubits=scaled_size(circuit, scale),
            mode=mode,
            alpha=alpha,
        )
        for hardware in hardware_presets
        for circuit in circuits
    ]


def run_batch_case(scale: float, num_workers: int,
                   circuits: Sequence[str] = DEFAULT_CIRCUITS,
                   hardware_presets: Sequence[str] = DEFAULT_HARDWARE,
                   mode: str = "hybrid", alpha: float = 1.0,
                   topology: str = "square") -> Dict:
    """Measure batch throughput (circuits/sec) at N workers vs serial.

    Both runs execute the identical task list through the service layer; the
    serial reference uses ``max_workers=1`` (in-process, no pool).
    """
    tasks = batch_tasks(scale, circuits, hardware_presets, mode, alpha, topology)
    serial = BatchCompiler(max_workers=1).compile(tasks)
    batch = BatchCompiler(max_workers=num_workers).compile(tasks)
    failures = len(serial.failed) + len(batch.failed)
    speedup = (serial.wall_seconds / batch.wall_seconds
               if batch.wall_seconds > 0 else 0.0)
    # Record the *effective* topologies of the built specs, not the request:
    # the "zoned" hardware preset normalises topology="square" to "zoned".
    effective = sorted({task.architecture.topology for task in tasks})
    case = {
        "kind": "batch_throughput",
        "hardware": "+".join(hardware_presets),
        "circuit": "+".join(circuits),
        "mode": mode,
        "topology": "+".join(effective),
        "scale": scale,
        "num_tasks": len(tasks),
        "num_workers": batch.num_workers,
        "available_cpus": os.cpu_count(),
        "serial_seconds": round(serial.wall_seconds, 4),
        "batch_seconds": round(batch.wall_seconds, 4),
        "serial_circuits_per_second": round(serial.circuits_per_second(), 4),
        "batch_circuits_per_second": round(batch.circuits_per_second(), 4),
        "throughput_speedup": round(speedup, 2),
        "num_failures": failures,
    }
    rss = peak_rss_mb()
    if rss is not None:
        case["peak_rss_mb"] = rss
    caveat = cpu_caveat(case)
    if caveat:
        case["cpu_caveat"] = caveat
    return case


def collect_report(scale: float,
                   circuits: Sequence[str] = DEFAULT_CIRCUITS,
                   hardware_presets: Sequence[str] = DEFAULT_HARDWARE,
                   modes: Sequence[str] = DEFAULT_MODES,
                   cases: Optional[Iterable[Dict]] = None,
                   topology: str = "square") -> Dict:
    """Assemble a full report, running the matrix unless ``cases`` is given."""
    if cases is None:
        cases = [run_case(hardware, circuit, mode, scale, topology=topology)
                 for hardware in hardware_presets
                 for circuit in circuits
                 for mode in modes]
    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "scale": scale,
        "cases": list(cases),
    }


def _case_key(case: Dict) -> Tuple:
    return (case.get("kind", "single"), case.get("hardware"),
            case.get("circuit"), case.get("mode"), case.get("scale"),
            case.get("topology", "square"))


def attach_baseline(report: Dict, baseline: Dict) -> None:
    """Add ``speedup_vs_baseline`` to cases with a matching baseline case."""
    reference = {_case_key(case): case for case in baseline.get("cases", [])}
    for case in report["cases"]:
        matched = reference.get(_case_key(case))
        if (matched and matched.get("wall_seconds", 0) > 0
                and case.get("wall_seconds", 0) > 0):
            case["speedup_vs_baseline"] = round(
                matched["wall_seconds"] / case["wall_seconds"], 2)


def merge_case(report_path, case: Dict, scale: float) -> Dict:
    """Append ``case`` to an existing report (replacing a same-key case).

    Creates a fresh report when the path does not hold one.  Used by the
    batch mode so throughput cases accumulate next to the single-circuit
    matrix instead of overwriting it.
    """
    path = Path(report_path)
    report: Optional[Dict] = None
    if path.exists():
        try:
            candidate = json.loads(path.read_text())
        except ValueError:
            candidate = None
        if isinstance(candidate, dict) and candidate.get("schema") == SCHEMA:
            report = candidate
    if report is None:
        report = {"schema": SCHEMA, "created_unix": time.time(),
                  "scale": scale, "cases": []}
    report["cases"] = [existing for existing in report["cases"]
                       if _case_key(existing) != _case_key(case)]
    report["cases"].append(case)
    report["created_unix"] = time.time()
    return report


def _preserved_cases(report_path, new_cases: Sequence[Dict],
                     topology: Optional[str] = "square") -> List[Dict]:
    """Cases of an existing report not superseded by ``new_cases``.

    Regenerating one single-circuit matrix must not silently drop previously
    recorded throughput cases (``batch_throughput`` / ``serving_throughput``)
    or the matrices of *other* topologies (e.g. a committed ``topology:
    "zoned"`` case when the square matrix is refreshed, and vice versa), so
    regeneration order does not matter.

    With ``topology`` set, same-topology single-circuit cases are dropped
    even when not superseded (a full-matrix CLI regeneration replaces that
    topology's matrix wholesale); ``topology=None`` preserves *every*
    non-superseded case (the cumulative pytest-harness path, which records
    a mixed-topology case list).
    """
    path = Path(report_path)
    if not path.exists():
        return []
    try:
        existing = json.loads(path.read_text())
    except ValueError:
        return []
    if not isinstance(existing, dict) or existing.get("schema") != SCHEMA:
        return []
    new_keys = {_case_key(case) for case in new_cases}
    return [case for case in existing.get("cases", [])
            if _case_key(case) not in new_keys
            and (topology is None
                 or case.get("kind", "single") != "single"
                 or case.get("topology", "square") != topology)]


def write_report(report: Dict, path) -> None:
    Path(path).write_text(json.dumps(report, indent=2) + "\n")


def cpu_caveat(case: Dict) -> Optional[str]:
    """The ROADMAP multi-core caveat when a throughput case is CPU-starved.

    The committed scale-0.3 batch case was recorded on a 1-CPU container
    where CPU-bound workers cannot beat serial; any summary of such a case
    must say so instead of presenting the speedup as a property of the code.
    """
    cpus = case.get("available_cpus")
    if cpus is None:
        return None
    kind = case.get("kind", "single")
    if kind == "shard_routing":
        workers = case.get("shard_workers") or 1
        if cpus < max(2, workers):
            return (f"only {cpus} CPU(s) available — the speculative "
                    f"scheduler's multi-core speedup cannot manifest here; "
                    f"recorded numbers reflect the chained scheduler "
                    f"(exact, single-core), whose speedup comes from "
                    f"smaller per-slice routing subproblems, not "
                    f"parallelism.  Re-record on a host with >= "
                    f"{max(2, workers)} cores for the parallel figure "
                    f"(ROADMAP caveat)")
        return None
    if kind == "single":
        # Only a case that actually ran with sharded routing can be starved
        # of the speculative scheduler's parallelism; a plain serial compile
        # carries no multi-core claim to caveat.
        if cpus < 2 and case.get("shard_routing"):
            return (f"only {cpus} CPU(s) available — intra-circuit sharded "
                    f"routing (shard_routing=True, speculative scheduler) "
                    f"cannot show a multi-core speedup on this host "
                    f"(ROADMAP caveat)")
        return None
    if kind != "batch_throughput":
        # Serving cases measure requests/sec against a latency budget, not
        # a speedup over a serial reference — no multi-core claim to hedge.
        return None
    workers = case.get("num_workers") or 1
    if cpus < max(2, workers):
        return (f"only {cpus} CPU(s) available — CPU-bound workers cannot "
                f"beat serial at {workers} workers; re-record this case on "
                f"a host with >= {max(2, workers)} cores (ROADMAP caveat)")
    return None


def profile_matrix(scale: float,
                   circuits: Sequence[str] = DEFAULT_CIRCUITS,
                   hardware_presets: Sequence[str] = DEFAULT_HARDWARE,
                   modes: Sequence[str] = DEFAULT_MODES,
                   topology: str = "square", top: int = 20,
                   stream=None) -> None:
    """Profile the routing pass per matrix case (``--profile``).

    For each (hardware, circuit, mode) the full pipeline compile runs under
    ``cProfile``; the dump shows the per-stage wall-clock split recorded by
    the mapper, the top-``top`` functions by cumulative time, and the same
    view restricted to ``repro/mapping`` so the routing hot spots are not
    drowned out by evaluation/scheduling frames.
    """
    import cProfile
    import pstats

    stream = stream or sys.stdout
    for hardware in hardware_presets:
        for circuit_name in circuits:
            for mode in modes:
                architecture, connectivity = _architecture(
                    hardware, scale, topology)
                circuit = build_circuit(circuit_name, scale)
                config = config_for_mode(mode, 1.0)
                profiler = cProfile.Profile()
                profiler.enable()
                context = compile_circuit(
                    circuit, architecture, config,
                    connectivity=connectivity,
                    alpha_ratio=1.0 if mode == "hybrid" else None)
                profiler.disable()
                result = context.require_result()
                header = (f"{hardware}/{circuit_name}/{mode} "
                          f"@ scale {scale} ({topology})")
                print(f"\n=== profile: {header} ===", file=stream)
                print("stage_seconds: "
                      + ", ".join(f"{stage}={seconds:.4f}s"
                                  for stage, seconds
                                  in sorted(result.stage_seconds.items())),
                      file=stream)
                stats = pstats.Stats(profiler, stream=stream)
                stats.sort_stats("cumulative")
                print(f"-- top {top} by cumulative time --", file=stream)
                stats.print_stats(top)
                print(f"-- top {top} within repro/mapping --", file=stream)
                stats.print_stats(r"repro[/\\]mapping", top)


def _print_case(case: Dict) -> None:
    if case.get("kind") == "batch_throughput":
        print(f"[batch    ] {case['circuit']:>12s} x {case['hardware']} "
              f"tasks={case['num_tasks']} workers={case['num_workers']} "
              f"serial={case['serial_seconds']:7.2f}s "
              f"batch={case['batch_seconds']:7.2f}s "
              f"throughput={case['batch_circuits_per_second']:5.2f}/s "
              f"speedup={case['throughput_speedup']:4.2f}x")
        caveat = cpu_caveat(case)
        if caveat:
            print(f"            note: {caveat}")
        return
    if case.get("kind") == "shard_routing":
        print(f"[shard    ] {case['circuit']:>12s} x {case['hardware']} "
              f"workers={case['shard_workers']} "
              f"scheduler={case['scheduler']} slices={case['num_slices']} "
              f"serial={case['serial_seconds']:7.2f}s "
              f"sharded={case['sharded_seconds']:7.2f}s "
              f"speedup={case['shard_speedup']:4.2f}x "
              f"moves={case['serial_moves']}->{case['sharded_moves']} "
              f"swaps={case['serial_swaps']}->{case['sharded_swaps']}")
        probe = case.get("speculative_seam_probe")
        if probe:
            print(f"            seam (speculative, thread x2): "
                  f"unseeded={probe['unseeded']['seam_gate_ratio']:.4f} "
                  f"seeded={probe['seeded']['seam_gate_ratio']:.4f} "
                  f"drop={probe['seam_ratio_drop']}x "
                  f"repair_moves={probe['seeded']['repair_moves']}")
        caveat = cpu_caveat(case)
        if caveat:
            print(f"            note: {caveat}")
        return
    if case.get("kind") == "telemetry_overhead":
        print(f"[telemetry] {case['circuit']:>12s} x {case['hardware']} "
              f"{case['mode']} "
              f"disabled={case['disabled_seconds']:7.3f}s "
              f"enabled={case['enabled_seconds']:7.3f}s "
              f"overhead={case['telemetry_overhead_pct']:+5.2f}% "
              f"digests_identical={case['digests_identical']}")
        return
    if case.get("kind") in ("serving_throughput", "serving_degraded"):
        tag = ("degraded " if case["kind"] == "serving_degraded"
               else "serving  ")
        fault_text = (f" crashes={case.get('pool_crashes', 0)}"
                      if case["kind"] == "serving_degraded" else "")
        print(f"[{tag}] {case['circuit']:>12s} x {case['hardware']} "
              f"requests={case['num_requests']} "
              f"(distinct={case['distinct_requests']}) "
              f"rps={case['requests_per_second']:6.2f} "
              f"hit_rate={case['hit_rate']:.2f} "
              f"compiles={case['num_compiles']} "
              f"p50={case['p50_ms']:7.1f}ms p95={case['p95_ms']:7.1f}ms"
              f"{fault_text}")
        return
    speedup = case.get("speedup_vs_baseline")
    speedup_text = f"  speedup={speedup:5.1f}x" if speedup is not None else ""
    topology = case.get("topology", "square")
    topology_text = "" if topology == "square" else f" ({topology})"
    print(f"[{case['hardware']:9s}] {case['circuit']:10s} {case['mode']:9s}"
          f"{topology_text} "
          f"wall={case['wall_seconds']:7.2f}s swaps={case['num_swaps']:5d} "
          f"moves={case['num_moves']:5d}{speedup_text}")


def build_parser(description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--scale", type=float, default=0.3,
                        help="fraction of the paper's register sizes (default 0.3)")
    parser.add_argument("--out", default="BENCH_scaling.json",
                        help="output path (default BENCH_scaling.json)")
    parser.add_argument("--baseline", default=None,
                        help="previous report to compute speedups against")
    parser.add_argument("--batch", action="store_true",
                        help="measure batch throughput (circuits/sec at N "
                             "workers vs serial) and append the case")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for --batch (default 4)")
    parser.add_argument("--shard", action="store_true",
                        help="record serial-vs-sharded routing cases "
                             "(kind shard_routing) for the selected matrix; "
                             "worker count auto-sizes to the host unless "
                             "--shard-workers is given")
    parser.add_argument("--shard-workers", type=int, default=None,
                        help="shard_workers for --shard (default: "
                             "min(cpus, 4) on multi-core hosts, else 1)")
    parser.add_argument("--profile", action="store_true",
                        help="run the selected matrix under cProfile and "
                             "dump a per-stage summary plus the top-20 "
                             "functions by cumulative time (no report write)")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="run the selected matrix under structured "
                             "tracing and write the span timeline as Chrome "
                             "trace-event JSON (open in Perfetto or "
                             "chrome://tracing)")
    parser.add_argument("--telemetry-overhead", action="store_true",
                        help="record the telemetry_overhead probe (qft in "
                             "shuttling mode, registry enabled vs disabled, "
                             "best of 3) and append the case; ignores the "
                             "matrix flags")
    parser.add_argument("--circuits", nargs="*", default=list(DEFAULT_CIRCUITS))
    parser.add_argument("--hardware", nargs="*", default=list(DEFAULT_HARDWARE))
    parser.add_argument("--modes", nargs="*", default=list(DEFAULT_MODES))
    parser.add_argument("--topology", default="square",
                        choices=("square", "zoned"),
                        help="trap topology of the benchmark devices "
                             "(default square); cases of other topologies "
                             "already in the report are preserved.  "
                             "Rectangular devices need explicit cols/"
                             "spacing_y, so they are driven via the "
                             "ArchitectureSpec API rather than this flag")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser(__doc__.splitlines()[0])
    args = parser.parse_args(argv)

    unknown = [name for name in args.circuits if name not in PAPER_SIZES]
    if unknown:
        parser.error(f"unknown circuit(s) {unknown}; "
                     f"choose from {sorted(PAPER_SIZES)}")
    if args.scale <= 0:
        parser.error("--scale must be positive")
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    if args.baseline and not Path(args.baseline).exists():
        parser.error(f"baseline report not found: {args.baseline}")

    if args.shard_workers is not None and args.shard_workers < 1:
        parser.error("--shard-workers must be at least 1")

    if args.trace and (args.profile or args.shard or args.batch
                       or args.telemetry_overhead):
        parser.error("--trace applies to the default single-circuit matrix")

    if args.profile:
        profile_matrix(args.scale, args.circuits, args.hardware, args.modes,
                       topology=args.topology)
        return 0

    if args.telemetry_overhead:
        case = run_telemetry_overhead_case(args.scale)
        report = merge_case(args.out, case, args.scale)
        write_report(report, args.out)
        _print_case(case)
        print(f"wrote {args.out}")
        return 0 if case["digests_identical"] else 1

    if args.shard:
        if len(args.modes) != 1:
            parser.error("--shard records comparison cases; pass exactly "
                         "one --modes value")
        report = None
        for hardware in args.hardware:
            for circuit_name in args.circuits:
                case = run_shard_case(hardware, circuit_name, args.modes[0],
                                      args.scale, topology=args.topology,
                                      workers=args.shard_workers)
                report = merge_case(args.out, case, args.scale)
                write_report(report, args.out)
                _print_case(case)
        print(f"wrote {args.out}")
        return 0

    if args.batch:
        if len(args.modes) != 1:
            parser.error("--batch records one case; pass exactly one --modes value")
        case = run_batch_case(args.scale, args.workers, args.circuits,
                              args.hardware, mode=args.modes[0],
                              topology=args.topology)
        report = merge_case(args.out, case, args.scale)
        write_report(report, args.out)
        _print_case(case)
        print(f"wrote {args.out}")
        return 0 if case["num_failures"] == 0 else 1

    if args.trace:
        from repro.telemetry import tracing

        spans = []
        traced_cases = []
        for hardware in args.hardware:
            for circuit_name in args.circuits:
                for mode in args.modes:
                    with tracing.start_trace(
                            "perf_report.case", hardware=hardware,
                            circuit=circuit_name, mode=mode) as handle:
                        traced_cases.append(run_case(
                            hardware, circuit_name, mode, args.scale,
                            topology=args.topology))
                    spans.extend(handle.spans)
                    spans.extend(tracing.TRACER.drain(handle.trace_id))
        report = collect_report(args.scale, args.circuits, args.hardware,
                                args.modes, cases=traced_cases,
                                topology=args.topology)
        Path(args.trace).write_text(
            json.dumps(tracing.chrome_trace_events(spans), indent=2) + "\n")
        print(f"wrote {args.trace}")
    else:
        report = collect_report(args.scale, args.circuits, args.hardware,
                                args.modes, topology=args.topology)
    report["cases"].extend(_preserved_cases(args.out, report["cases"],
                                            topology=args.topology))
    if args.baseline:
        attach_baseline(report, json.loads(Path(args.baseline).read_text()))
    write_report(report, args.out)
    for case in report["cases"]:
        _print_case(case)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
