"""Perf-report helper: track ``run_mapping`` wall time per stage across scales.

Emits ``BENCH_scaling.json`` so the performance trajectory of the mapper is
recorded from PR 1 onward (schema ``repro-bench-scaling/v1``):

.. code-block:: json

    {
      "schema": "repro-bench-scaling/v1",
      "created_unix": 1753000000.0,
      "scale": 0.3,
      "cases": [
        {
          "hardware": "gate", "circuit": "qft", "mode": "hybrid",
          "scale": 0.3, "num_qubits": 60,
          "wall_seconds": 1.22,      // full run: build + map + evaluate
          "mapper_seconds": 1.19,    // HybridMapper.map wall time (RT column)
          "stage_seconds": {         // accumulated inside the routing loop
            "execute": 0.05, "decide": 0.11,
            "gate_route": 0.98, "shuttle_route": 0.0
          },
          "num_swaps": 46, "num_moves": 0,
          "delta_cz": 138, "delta_t_us": 1234.5,
          "speedup_vs_baseline": 11.5   // present only with --baseline
        }
      ]
    }

Usage::

    PYTHONPATH=src python benchmarks/perf_report.py --scale 0.3 \
        --out BENCH_scaling.json [--baseline benchmarks/BENCH_seed_baseline.json]

``--baseline`` points at a previous report (e.g. the committed seed
baseline); matching cases gain a ``speedup_vs_baseline`` field computed from
``wall_seconds``.  The pytest entry point is ``benchmarks/bench_scaling.py``,
which runs the same matrix and emits the same file.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

if __package__:
    from .common import (PAPER_SIZES, build_architecture, build_circuit,
                         config_for_mode, scaled_size)
else:  # executed as a plain script: python benchmarks/perf_report.py
    _HERE = Path(__file__).resolve().parent
    for entry in (str(_HERE), str(_HERE.parent / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    from common import (PAPER_SIZES, build_architecture, build_circuit,
                        config_for_mode, scaled_size)

from repro.evaluation import evaluate
from repro.hardware import SiteConnectivity
from repro.mapping import HybridMapper

SCHEMA = "repro-bench-scaling/v1"
DEFAULT_CIRCUITS: Tuple[str, ...] = ("qft", "graph")
DEFAULT_HARDWARE: Tuple[str, ...] = ("gate", "mixed", "shuttling")
DEFAULT_MODES: Tuple[str, ...] = ("hybrid",)

#: (hardware, scale) -> (architecture, connectivity); construction is costly.
_ARCH_CACHE: Dict[Tuple[str, float], tuple] = {}


def _architecture(hardware: str, scale: float):
    key = (hardware, scale)
    if key not in _ARCH_CACHE:
        architecture = build_architecture(hardware, scale)
        _ARCH_CACHE[key] = (architecture, SiteConnectivity(architecture))
    return _ARCH_CACHE[key]


def run_case(hardware: str, circuit_name: str, mode: str, scale: float,
             *, alpha: float = 1.0) -> Dict:
    """Run one benchmark configuration and return its report case."""
    architecture, connectivity = _architecture(hardware, scale)
    circuit = build_circuit(circuit_name, scale)
    mapper = HybridMapper(architecture, config_for_mode(mode, alpha),
                          connectivity=connectivity)
    start = time.perf_counter()
    result = mapper.map(circuit)
    metrics = evaluate(circuit, result, architecture, connectivity=connectivity,
                       alpha_ratio=alpha if mode == "hybrid" else None)
    wall = time.perf_counter() - start
    return {
        "hardware": hardware,
        "circuit": circuit_name,
        "mode": mode,
        "scale": scale,
        "num_qubits": scaled_size(circuit_name, scale),
        "wall_seconds": round(wall, 4),
        "mapper_seconds": round(result.runtime_seconds, 4),
        "stage_seconds": {stage: round(seconds, 4)
                          for stage, seconds in result.stage_seconds.items()},
        "num_swaps": result.num_swaps,
        "num_moves": result.num_moves,
        "delta_cz": metrics.delta_cz,
        "delta_t_us": round(metrics.delta_t_us, 2),
    }


def collect_report(scale: float,
                   circuits: Sequence[str] = DEFAULT_CIRCUITS,
                   hardware_presets: Sequence[str] = DEFAULT_HARDWARE,
                   modes: Sequence[str] = DEFAULT_MODES,
                   cases: Optional[Iterable[Dict]] = None) -> Dict:
    """Assemble a full report, running the matrix unless ``cases`` is given."""
    if cases is None:
        cases = [run_case(hardware, circuit, mode, scale)
                 for hardware in hardware_presets
                 for circuit in circuits
                 for mode in modes]
    return {
        "schema": SCHEMA,
        "created_unix": time.time(),
        "scale": scale,
        "cases": list(cases),
    }


def _case_key(case: Dict) -> Tuple:
    return (case.get("hardware"), case.get("circuit"), case.get("mode"),
            case.get("scale"))


def attach_baseline(report: Dict, baseline: Dict) -> None:
    """Add ``speedup_vs_baseline`` to cases with a matching baseline case."""
    reference = {_case_key(case): case for case in baseline.get("cases", [])}
    for case in report["cases"]:
        matched = reference.get(_case_key(case))
        if matched and matched.get("wall_seconds", 0) > 0 and case["wall_seconds"] > 0:
            case["speedup_vs_baseline"] = round(
                matched["wall_seconds"] / case["wall_seconds"], 2)


def write_report(report: Dict, path) -> None:
    Path(path).write_text(json.dumps(report, indent=2) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3,
                        help="fraction of the paper's register sizes (default 0.3)")
    parser.add_argument("--out", default="BENCH_scaling.json",
                        help="output path (default BENCH_scaling.json)")
    parser.add_argument("--baseline", default=None,
                        help="previous report to compute speedups against")
    parser.add_argument("--circuits", nargs="*", default=list(DEFAULT_CIRCUITS))
    parser.add_argument("--hardware", nargs="*", default=list(DEFAULT_HARDWARE))
    parser.add_argument("--modes", nargs="*", default=list(DEFAULT_MODES))
    args = parser.parse_args(argv)

    unknown = [name for name in args.circuits if name not in PAPER_SIZES]
    if unknown:
        parser.error(f"unknown circuit(s) {unknown}; "
                     f"choose from {sorted(PAPER_SIZES)}")
    if args.scale <= 0:
        parser.error("--scale must be positive")
    if args.baseline and not Path(args.baseline).exists():
        parser.error(f"baseline report not found: {args.baseline}")

    report = collect_report(args.scale, args.circuits, args.hardware, args.modes)
    if args.baseline:
        attach_baseline(report, json.loads(Path(args.baseline).read_text()))
    write_report(report, args.out)
    for case in report["cases"]:
        speedup = case.get("speedup_vs_baseline")
        speedup_text = f"  speedup={speedup:5.1f}x" if speedup is not None else ""
        print(f"[{case['hardware']:9s}] {case['circuit']:10s} {case['mode']:9s} "
              f"wall={case['wall_seconds']:7.2f}s swaps={case['num_swaps']:5d} "
              f"moves={case['num_moves']:5d}{speedup_text}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
