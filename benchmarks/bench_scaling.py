"""Scaling benchmark: per-stage compile wall time, emitting BENCH_scaling.json.

Runs the hybrid mapper on the ``qft``/``graph`` benchmarks over all three
hardware presets at ``REPRO_BENCH_SCALE`` and records where the time goes
(execute / decide / gate_route / shuttle_route plus the pipeline's per-pass
timings), the swap/move counts that must stay bit-identical across perf PRs,
and a batch-throughput case from the service layer (circuits/sec at N
workers vs serial).  After the matrix has run, the accumulated cases are
written to ``BENCH_scaling.json`` (override the path with
``REPRO_BENCH_REPORT``) in the ``repro-bench-scaling/v1`` schema of
:mod:`benchmarks.perf_report`, so every benchmark run leaves a
machine-readable perf trace behind.

Script usage (records a batch case without the pytest harness)::

    PYTHONPATH=src python benchmarks/bench_scaling.py --batch --workers 4 \
        --scale 0.3 --out BENCH_scaling.json
"""

from __future__ import annotations

import os
import sys
from pathlib import Path
from typing import Dict, List, Optional

if __package__:
    from .common import BENCH_SCALE
    from .perf_report import (DEFAULT_CIRCUITS, DEFAULT_HARDWARE,
                              _preserved_cases, collect_report,
                              main as perf_report_main, run_batch_case,
                              run_case, write_report)
else:  # executed as a plain script: python benchmarks/bench_scaling.py
    _HERE = Path(__file__).resolve().parent
    for entry in (str(_HERE), str(_HERE.parent / "src")):
        if entry not in sys.path:
            sys.path.insert(0, entry)
    from common import BENCH_SCALE
    from perf_report import (DEFAULT_CIRCUITS, DEFAULT_HARDWARE,
                             _preserved_cases, collect_report,
                             main as perf_report_main, run_batch_case,
                             run_case, write_report)

import pytest

#: Worker count of the smoke batch case recorded by the pytest run.
SMOKE_BATCH_WORKERS = 2

_CASES: List[Dict] = []


def _report_path() -> str:
    return os.environ.get("REPRO_BENCH_REPORT", "BENCH_scaling.json")


@pytest.mark.benchmark(group="scaling")
@pytest.mark.parametrize("circuit_name", DEFAULT_CIRCUITS)
@pytest.mark.parametrize("hardware", DEFAULT_HARDWARE)
def test_scaling_case(benchmark, hardware, circuit_name):
    case = benchmark.pedantic(run_case, args=(hardware, circuit_name, "hybrid",
                                              BENCH_SCALE),
                              rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {key: value for key, value in case.items()
         if key not in ("stage_seconds", "pass_seconds")})
    benchmark.extra_info.update(
        {f"stage_{stage}_s": seconds
         for stage, seconds in case["stage_seconds"].items()})
    _CASES.append(case)
    assert set(case["stage_seconds"]) == {"execute", "decide",
                                          "gate_route", "shuttle_route"}
    assert set(case["pass_seconds"]) == {"decompose", "initial_layout",
                                         "routing", "schedule", "evaluate"}
    # At tiny smoke scales a case may need no routing at all, so only sanity
    # is asserted, not a positive operation count.
    assert case["num_swaps"] >= 0 and case["num_moves"] >= 0
    assert case["mapper_seconds"] >= 0
    print(f"\n[{case['hardware']:9s}] {case['circuit']:10s} "
          f"wall={case['wall_seconds']:7.2f}s "
          f"stages={case['stage_seconds']} "
          f"swaps={case['num_swaps']} moves={case['num_moves']}")


@pytest.mark.benchmark(group="scaling")
def test_zoned_smoke_case(benchmark):
    """Record a zoned-topology case (mixed device parameters, storage +
    entangling bands) so the multi-zone scenario is exercised — and its perf
    trace kept — on every benchmark run."""
    case = benchmark.pedantic(run_case, args=("mixed", "qft", "hybrid",
                                              BENCH_SCALE),
                              kwargs={"topology": "zoned"},
                              rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {key: value for key, value in case.items()
         if key not in ("stage_seconds", "pass_seconds")})
    _CASES.append(case)
    assert case["topology"] == "zoned"
    # Zoned routing must shuttle gate qubits into the entangling band.
    assert case["num_moves"] > 0
    print(f"\n[zoned    ] {case['circuit']:10s} wall={case['wall_seconds']:7.2f}s "
          f"swaps={case['num_swaps']} moves={case['num_moves']}")


def test_batch_throughput_case():
    """Record a service-layer batch-throughput case (circuits/sec at N workers).

    The case compiles the full qft/graph x hardware matrix through the
    :class:`~repro.service.BatchCompiler`, once serially and once with
    worker processes; every task must succeed.  Absolute speedup depends on
    the host's core count, so only sanity is asserted here — the recorded
    numbers are the artifact.
    """
    case = run_batch_case(BENCH_SCALE, SMOKE_BATCH_WORKERS)
    _CASES.append(case)
    assert case["num_failures"] == 0
    assert case["num_tasks"] == len(DEFAULT_CIRCUITS) * len(DEFAULT_HARDWARE)
    assert case["batch_circuits_per_second"] > 0
    print(f"\n[batch] tasks={case['num_tasks']} workers={case['num_workers']} "
          f"serial={case['serial_seconds']:.2f}s batch={case['batch_seconds']:.2f}s "
          f"speedup={case['throughput_speedup']:.2f}x "
          f"(host cpus: {case['available_cpus']})")
    if case.get("cpu_caveat"):
        print(f"[batch] note: {case['cpu_caveat']}")


def test_emit_scaling_report():
    """Write the accumulated cases (or a fresh matrix) to BENCH_scaling.json.

    Non-superseded cases already in the report — other topologies, other
    scales, batch-throughput entries — are preserved, matching the CLI
    path's merge semantics, so a harness run never silently drops committed
    cases it did not re-measure.
    """
    report = collect_report(BENCH_SCALE, cases=_CASES or None)
    report["cases"].extend(
        _preserved_cases(_report_path(), report["cases"], topology=None))
    write_report(report, _report_path())
    assert os.path.exists(_report_path())
    assert report["cases"], "scaling report must contain at least one case"


def main(argv: Optional[List[str]] = None) -> int:
    """Script entry point: delegate to the perf-report CLI (incl. ``--batch``)."""
    return perf_report_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
