"""Scaling benchmark: per-stage ``run_mapping`` wall time, emitting BENCH_scaling.json.

Runs the hybrid mapper on the ``qft``/``graph`` benchmarks over all three
hardware presets at ``REPRO_BENCH_SCALE`` and records where the time goes
(execute / decide / gate_route / shuttle_route), plus the swap/move counts
that must stay bit-identical across perf PRs.  After the matrix has run, the
accumulated cases are written to ``BENCH_scaling.json`` (override the path
with ``REPRO_BENCH_REPORT``) in the ``repro-bench-scaling/v1`` schema of
:mod:`benchmarks.perf_report`, so every benchmark run leaves a machine-readable
perf trace behind.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from .common import BENCH_SCALE
from .perf_report import (DEFAULT_CIRCUITS, DEFAULT_HARDWARE, collect_report,
                          run_case, write_report)

_CASES: List[Dict] = []


def _report_path() -> str:
    return os.environ.get("REPRO_BENCH_REPORT", "BENCH_scaling.json")


@pytest.mark.benchmark(group="scaling")
@pytest.mark.parametrize("circuit_name", DEFAULT_CIRCUITS)
@pytest.mark.parametrize("hardware", DEFAULT_HARDWARE)
def test_scaling_case(benchmark, hardware, circuit_name):
    case = benchmark.pedantic(run_case, args=(hardware, circuit_name, "hybrid",
                                              BENCH_SCALE),
                              rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info.update(
        {key: value for key, value in case.items() if key != "stage_seconds"})
    benchmark.extra_info.update(
        {f"stage_{stage}_s": seconds
         for stage, seconds in case["stage_seconds"].items()})
    _CASES.append(case)
    assert set(case["stage_seconds"]) == {"execute", "decide",
                                          "gate_route", "shuttle_route"}
    # At tiny smoke scales a case may need no routing at all, so only sanity
    # is asserted, not a positive operation count.
    assert case["num_swaps"] >= 0 and case["num_moves"] >= 0
    assert case["mapper_seconds"] >= 0
    print(f"\n[{case['hardware']:9s}] {case['circuit']:10s} "
          f"wall={case['wall_seconds']:7.2f}s "
          f"stages={case['stage_seconds']} "
          f"swaps={case['num_swaps']} moves={case['num_moves']}")


def test_emit_scaling_report():
    """Write the accumulated cases (or a fresh matrix) to BENCH_scaling.json."""
    report = collect_report(BENCH_SCALE, cases=_CASES or None)
    write_report(report, _report_path())
    assert os.path.exists(_report_path())
    assert report["cases"], "scaling report must contain at least one case"
