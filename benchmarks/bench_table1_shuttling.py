"""Table 1a, hardware block (1) "Shuttling": shuttling-optimised hardware.

Regenerates the first block of the paper's Table 1a: every benchmark circuit
is mapped with the three compiler settings (A) shuttling-only, (B) gate-only
and (C) the hybrid approach on the shuttling-optimised hardware preset
(Table 1c column 1).  Expected shape: shuttling-only and the hybrid mapper
coincide (ΔCZ = 0) and achieve a smaller fidelity decrease δF than gate-only.
"""

import pytest

from .common import MODES, PAPER_SIZES, record_metrics, run_mapping

HARDWARE = "shuttling"


@pytest.mark.benchmark(group="table1a-shuttling-hardware")
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("circuit_name", list(PAPER_SIZES))
def test_table1_shuttling_hardware(benchmark, circuit_name, mode):
    metrics = benchmark.pedantic(run_mapping, args=(HARDWARE, circuit_name, mode),
                                 rounds=1, iterations=1)
    record_metrics(benchmark, metrics)
    if mode == "shuttling_only":
        assert metrics.delta_cz == 0
    if mode == "gate_only":
        assert metrics.num_moves == 0 or metrics.num_swaps >= 0
